//! **Million-point scale sweep** — records BENCH_scale.json.
//!
//! Runs a jitter × error × permutation sweep (default 4096 × 64 × 4 =
//! 1,048,576 points) over the 64-message case study through the
//! engine's deterministic chunked batch path, once per worker count in
//! {1, 2, 4, max hardware threads} (deduplicated), and records:
//!
//! * the **points/s-per-core curve** across those job counts,
//! * **cold and warm single-core** numbers for the shared 1024-point
//!   reference batch (`scale/cold_1024pts_jobs/1`, `scale/warm_1024pts`
//!   — the same workload the `scale` criterion bench times, which is
//!   how CI's perf gate ties the committed record to a fresh run),
//! * a cross-jobs **bit-identity proof**: every run folds all 1M
//!   reports into an order-dependent WCRT checksum, and the sweep
//!   aborts if any job count disagrees in a single bit.
//!
//! The sweep streams in slabs of 8192 points against a bounded cache
//! (4096 entries), so memory stays flat at any point count.
//!
//! Flags: `--quick` (65,536 points), `--points N` (N must be a
//! multiple of 256), `--out PATH` (default BENCH_scale.json).

use carta_bench::{case_study, scale_batch_1k, scale_perms, scale_point};
use carta_engine::evaluator::EvalResult;
use carta_engine::prelude::{BaseSystem, Evaluator, Parallelism};
use carta_obs::json::ObjectBuilder;
use std::time::Instant;

const ERRORS: usize = 64;
const PERMS: usize = 4;
const SLAB: usize = 8192;
const CACHE_CAPACITY: usize = 4096;
const DEFAULT_POINTS: usize = 1 << 20;

struct SweepRun {
    jobs: usize,
    wall_s: f64,
    checksum: u64,
    schedulable: u64,
    hits: u64,
    misses: u64,
}

/// Order-dependent fold over every message's WCRT (unbounded responses
/// fold as `u64::MAX`), so two runs agree iff every report agrees.
fn fold_checksum(mut checksum: u64, results: &[EvalResult]) -> (u64, u64) {
    let mut schedulable = 0u64;
    for result in results {
        let report = result.as_ref().expect("scale sweep points are valid");
        if report.schedulable() {
            schedulable += 1;
        }
        for m in &report.messages {
            let wcrt = m.outcome.wcrt().map_or(u64::MAX, |t| t.as_ns());
            checksum = checksum.wrapping_mul(0x100000001b3).wrapping_add(wcrt);
        }
    }
    (checksum, schedulable)
}

fn run_sweep(points: usize, jobs: usize) -> SweepRun {
    let base = BaseSystem::new(case_study());
    let perms = scale_perms(base.network().messages().len(), PERMS);
    let ratios = points / (ERRORS * PERMS);
    let eval = Evaluator::builder()
        .jobs(jobs)
        .cache_capacity(CACHE_CAPACITY)
        .build();
    let mut checksum = 0u64;
    let mut schedulable = 0u64;
    let start = Instant::now();
    let mut i = 0;
    while i < points {
        let slab_len = SLAB.min(points - i);
        let slab: Vec<_> = (i..i + slab_len)
            .map(|k| scale_point(&base, &perms, ratios, ERRORS, k))
            .collect();
        let results = eval.evaluate_batch(&slab);
        let (next, sched) = fold_checksum(checksum, &results);
        checksum = next;
        schedulable += sched;
        i += slab_len;
    }
    let wall_s = start.elapsed().as_secs_f64();
    let stats = eval.stats();
    eprintln!(
        "  jobs={jobs}: {points} points in {wall_s:.1}s ({:.0} points/s, checksum {checksum:#018x})",
        points as f64 / wall_s
    );
    SweepRun {
        jobs,
        wall_s,
        checksum,
        schedulable,
        hits: stats.hits,
        misses: stats.misses,
    }
}

/// Median wall seconds of `reps` runs of `f`.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut points = DEFAULT_POINTS;
    let mut out = "BENCH_scale.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => points = 1 << 16,
            "--points" => {
                let raw = it.next().expect("--points needs a value");
                points = raw.parse().expect("--points needs an integer");
            }
            "--out" => out = it.next().expect("--out needs a path").clone(),
            other => panic!("unknown flag {other:?} (use --quick, --points N, --out PATH)"),
        }
    }
    assert!(
        points >= ERRORS * PERMS && points.is_multiple_of(ERRORS * PERMS),
        "--points must be a positive multiple of {}",
        ERRORS * PERMS
    );

    let ncpu = Parallelism::available();
    // jobs ∈ {1, 2, 4, max}: on a single-core host the jobs>1 runs
    // still execute (they price the chunked protocol's overhead and
    // feed the bit-identity check); only `max` collapses into the set.
    let mut job_counts: Vec<usize> = vec![1, 2, 4, ncpu];
    job_counts.sort_unstable();
    job_counts.dedup();

    eprintln!("scale sweep: {points} points (jitter x error x permutation), jobs {job_counts:?}");
    let runs: Vec<SweepRun> = job_counts.iter().map(|&j| run_sweep(points, j)).collect();

    // Cross-jobs bit-identity: the checksum folds every WCRT of every
    // report in batch order, so one differing bit anywhere fails here.
    for run in &runs[1..] {
        assert_eq!(
            run.checksum, runs[0].checksum,
            "jobs={} produced different results than jobs={}",
            run.jobs, runs[0].jobs
        );
        assert_eq!(
            (run.hits, run.misses),
            (runs[0].hits, runs[0].misses),
            "jobs={} produced different cache statistics than jobs={}",
            run.jobs,
            runs[0].jobs
        );
    }

    // Cold/warm single-core reference rows on the shared 1024-point
    // batch (same workload as the `scale` criterion bench).
    eprintln!("  single-core reference batch (1024 points, 15 reps each)");
    let reference = scale_batch_1k();
    let cold_s = median_secs(15, || {
        let eval = Evaluator::new(Parallelism::new(1));
        let _ = eval.evaluate_batch(&reference);
    });
    let warm_eval = Evaluator::new(Parallelism::new(1));
    let _ = warm_eval.evaluate_batch(&reference);
    let warm_s = median_secs(15, || {
        let _ = warm_eval.evaluate_batch(&reference);
    });

    let result_rows: Vec<String> = runs
        .iter()
        .map(|run| {
            let pps = points as f64 / run.wall_s;
            ObjectBuilder::new()
                .string("id", &format!("scale/sweep_jobs/{}", run.jobs))
                .uint("jobs", run.jobs as u64)
                .uint("points", points as u64)
                .num("wall_s", (run.wall_s * 1e3).round() / 1e3)
                .num("points_per_sec", pps.round())
                .num("points_per_sec_per_core", (pps / run.jobs as f64).round())
                .uint("schedulable_points", run.schedulable)
                .string("checksum", &format!("{:#018x}", run.checksum))
                .build()
        })
        .chain([
            ObjectBuilder::new()
                .string("id", "scale/cold_1024pts_jobs/1")
                .string(
                    "description",
                    "fresh evaluator per rep, 1024-point permutation-free reference batch \
                     (256 jitter ratios x 4 sporadic-error intervals), median of 15 reps - \
                     comparable to the `scale` criterion bench row of the same id",
                )
                .num("median_ms", (cold_s * 1e6).round() / 1e3)
                .num("points_per_sec_median", (1024.0 / cold_s).round())
                .build(),
            ObjectBuilder::new()
                .string("id", "scale/warm_1024pts")
                .string(
                    "description",
                    "same batch against a pre-warmed memo cache: the chunked read pass \
                     answers every point without solving",
                )
                .num("median_us", (warm_s * 1e9).round() / 1e3)
                .build(),
        ])
        .collect();

    let curve: Vec<String> = runs
        .iter()
        .map(|run| {
            let pps = points as f64 / run.wall_s;
            format!(
                "{{\"jobs\": {}, \"points_per_sec\": {}, \"points_per_sec_per_core\": {}}}",
                run.jobs,
                pps.round(),
                (pps / run.jobs as f64).round()
            )
        })
        .collect();

    let machine_note = if ncpu == 1 {
        "single-core container: the jobs>1 rows price the chunked protocol's overhead \
         (no parallel speedup is measurable here); on a multi-core host the curve records \
         real scaling"
            .to_string()
    } else {
        format!("{ncpu} hardware threads available")
    };

    let doc = ObjectBuilder::new()
        .string(
            "bench",
            "scale (multi-core batch solve, deterministic chunking)",
        )
        .string("date", "2026-08-09")
        .string("command", "cargo run --release -p carta-bench --bin scale")
        .raw(
            "machine",
            &ObjectBuilder::new()
                .uint("cpus", ncpu as u64)
                .string("note", &machine_note)
                .build(),
        )
        .string(
            "workload",
            &format!(
                "{points} SystemVariant points over the 64-message powertrain case study: \
                 {} jitter ratios x {ERRORS} sporadic-error intervals x {PERMS} identifier \
                 permutations (incl. identity), streamed in slabs of {SLAB} against a \
                 {CACHE_CAPACITY}-entry bounded cache",
                points / (ERRORS * PERMS)
            ),
        )
        .raw("results", &format!("[{}]", result_rows.join(", ")))
        .raw(
            "points_per_sec_per_core_curve",
            &format!("[{}]", curve.join(", ")),
        )
        .string(
            "bit_identity",
            "every run folds all reports into an order-dependent WCRT checksum; the sweep \
             asserts all job counts produce the identical checksum and identical hit/miss \
             counts before this file is written",
        )
        .raw(
            "summary",
            &ObjectBuilder::new()
                .num(
                    "single_core_points_per_sec",
                    (points as f64 / runs[0].wall_s).round(),
                )
                .string(
                    "determinism",
                    "chunked round-robin assignment (64-point chunks, chunk c -> worker \
                     c % jobs) with per-chunk warm-start invalidation makes results a pure \
                     function of the batch at any job count",
                )
                .build(),
        )
        .build();

    std::fs::write(&out, format!("{doc}\n")).expect("write BENCH_scale.json");
    eprintln!("wrote {out}");
}
