//! Regenerates every figure and experiment of the paper in sequence —
//! the one-command reproduction driver referenced by EXPERIMENTS.md.
//! Each section is the output of the corresponding dedicated binary
//! (`fig1_load` … `fig6_duality`, `ablation_baselines`), inlined.

use std::process::Command;

fn main() {
    let bins = [
        "fig1_load",
        "fig2_trace",
        "fig3_scope",
        "exp1_zero_jitter",
        "exp2_realistic",
        "fig4_sensitivity",
        "fig5_loss",
        "fig6_duality",
        "ablation_baselines",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = 0;
    for bin in bins {
        println!("\n{:=^78}\n", format!(" {bin} "));
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} FAILED ({status})");
            failures += 1;
        }
    }
    println!("\n{:=^78}", " done ");
    if failures > 0 {
        eprintln!("{failures} binaries failed");
        std::process::exit(1);
    }
    println!("all {} experiment binaries completed", bins.len());
}
