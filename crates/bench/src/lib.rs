//! Shared helpers for the `carta-bench` figure-regeneration binaries
//! and criterion benches. See DESIGN.md §3 for the experiment index
//! and EXPERIMENTS.md for recorded outputs.

pub mod plot;

use carta_engine::prelude::{BaseSystem, Scenario, SystemVariant};
use carta_explore::loss::LossCurve;
use carta_kmatrix::generator::powertrain_default;
use carta_kmatrix::model::KMatrix;
use std::sync::Arc;

/// The case-study network used by every experiment.
pub fn case_study() -> carta_can::network::CanNetwork {
    case_study_matrix()
        .to_network()
        .expect("generated matrix is always convertible")
}

/// The case-study K-Matrix (seed 42).
pub fn case_study_matrix() -> KMatrix {
    powertrain_default()
}

/// The identifier permutations of the scale sweep: `None` (the base
/// order) followed by `count - 1` rotations of the priority ranks.
pub fn scale_perms(n_msgs: usize, count: usize) -> Vec<Option<Arc<Vec<usize>>>> {
    (0..count)
        .map(|rot| {
            if rot == 0 {
                None
            } else {
                Some(Arc::new((0..n_msgs).map(|i| (i + rot) % n_msgs).collect()))
            }
        })
        .collect()
}

/// One point of the jitter × error × permutation scale sweep, shared by
/// the `scale` criterion bench and the `scale` bin (BENCH_scale.json)
/// so their workloads stay comparable.
///
/// Index `i` decomposes little-endian into (jitter-ratio rank,
/// sporadic-error interval rank, permutation rank); every index below
/// `ratios * errors * perms.len()` maps to a structurally distinct
/// [`VariantKey`](carta_engine::prelude::VariantKey), which is what
/// makes the sweep's cache statistics reproducible at any job count.
pub fn scale_point(
    base: &Arc<BaseSystem>,
    perms: &[Option<Arc<Vec<usize>>>],
    ratios: usize,
    errors: usize,
    i: usize,
) -> SystemVariant {
    let ratio_rank = i % ratios;
    let err_rank = (i / ratios) % errors;
    let perm_rank = (i / (ratios * errors)) % perms.len();
    let scenario = Scenario::sporadic_errors(carta_core::time::Time::from_us(
        2_000 + 250 * err_rank as u64,
    ));
    let mut v = SystemVariant::new(base.clone(), scenario)
        .with_jitter_ratio(ratio_rank as f64 / ratios as f64 * 0.6);
    if let Some(perm) = &perms[perm_rank] {
        v = v.with_permutation(perm.clone());
    }
    v
}

/// The single-core reference batch of the scale sweep: 1024
/// permutation-free points (256 jitter ratios × 4 error intervals) over
/// the case study. `scale/cold_1024pts_jobs/1` in the bench and the
/// cold/warm single-core rows of BENCH_scale.json time exactly this.
pub fn scale_batch_1k() -> Vec<SystemVariant> {
    let base = BaseSystem::new(case_study());
    let perms = scale_perms(0, 1);
    (0..1024)
        .map(|i| scale_point(&base, &perms, 256, 4, i))
        .collect()
}

/// Prints a loss curve as one aligned row, the textual form of one
/// Figure-5 series.
pub fn print_loss_curve(label: &str, curve: &LossCurve) {
    print!("{label:<26} |");
    for p in &curve.points {
        print!(" {:5.1}", p.fraction() * 100.0);
    }
    println!();
}

/// Prints the shared jitter header row for curve tables.
pub fn print_jitter_header(ratios: &[f64]) {
    print!("{:<26} |", "jitter in % of period");
    for r in ratios {
        print!(" {:5.0}", r * 100.0);
    }
    println!();
    println!("{}", "-".repeat(28 + 6 * ratios.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_is_stable() {
        let net = case_study();
        assert_eq!(net.messages().len(), 64);
        assert_eq!(net.nodes().len(), 8);
    }
}
