//! Shared helpers for the `carta-bench` figure-regeneration binaries
//! and criterion benches. See DESIGN.md §3 for the experiment index
//! and EXPERIMENTS.md for recorded outputs.

pub mod plot;

use carta_explore::loss::LossCurve;
use carta_kmatrix::generator::powertrain_default;
use carta_kmatrix::model::KMatrix;

/// The case-study network used by every experiment.
pub fn case_study() -> carta_can::network::CanNetwork {
    case_study_matrix()
        .to_network()
        .expect("generated matrix is always convertible")
}

/// The case-study K-Matrix (seed 42).
pub fn case_study_matrix() -> KMatrix {
    powertrain_default()
}

/// Prints a loss curve as one aligned row, the textual form of one
/// Figure-5 series.
pub fn print_loss_curve(label: &str, curve: &LossCurve) {
    print!("{label:<26} |");
    for p in &curve.points {
        print!(" {:5.1}", p.fraction() * 100.0);
    }
    println!();
}

/// Prints the shared jitter header row for curve tables.
pub fn print_jitter_header(ratios: &[f64]) {
    print!("{:<26} |", "jitter in % of period");
    for r in ratios {
        print!(" {:5.0}", r * 100.0);
    }
    println!();
    println!("{}", "-".repeat(28 + 6 * ratios.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_is_stable() {
        let net = case_study();
        assert_eq!(net.messages().len(), 64);
        assert_eq!(net.nodes().len(), 8);
    }
}
