//! Minimal ASCII line charts for the figure-regeneration binaries —
//! so `fig4_sensitivity` and `fig5_loss` print an actual *figure*, not
//! only the data rows.

/// One data series: a label, a plot symbol and the y-values (one per
/// shared x grid point). `None` = missing (e.g. unbounded).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Single-character mark used for this series.
    pub mark: char,
    /// Y-values over the shared x grid.
    pub values: Vec<Option<f64>>,
}

/// Renders series sharing an x grid as an ASCII chart with `height`
/// rows. X labels are printed beneath, the legend after.
///
/// # Panics
///
/// Panics if `height < 2`, the series are empty, or their lengths
/// differ from `x_labels`.
pub fn line_chart(x_labels: &[String], series: &[Series], height: usize, y_unit: &str) -> String {
    assert!(height >= 2, "chart needs at least two rows");
    assert!(!series.is_empty(), "chart needs at least one series");
    for s in series {
        assert_eq!(
            s.values.len(),
            x_labels.len(),
            "series `{}` length",
            s.label
        );
    }
    let y_max = series
        .iter()
        .flat_map(|s| s.values.iter().flatten())
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-9);

    let columns = x_labels.len();
    let col_width = x_labels.iter().map(String::len).max().unwrap_or(1).max(5) + 1;
    let label_width = 8;

    // Grid of rows (top = y_max).
    let mut rows: Vec<Vec<char>> = vec![vec![' '; columns * col_width]; height];
    for s in series {
        for (i, v) in s.values.iter().enumerate() {
            let Some(v) = v else { continue };
            let frac = (v / y_max).clamp(0.0, 1.0);
            let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
            let col = i * col_width + col_width / 2;
            let cell = &mut rows[row][col];
            // Overlapping series show '*'.
            *cell = if *cell == ' ' || *cell == s.mark {
                s.mark
            } else {
                '*'
            };
        }
    }

    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        let y_val = y_max * (1.0 - r as f64 / (height - 1) as f64);
        let y_label = if r == 0 || r == height - 1 || r == (height - 1) / 2 {
            format!("{y_val:>6.1}{y_unit}")
        } else {
            String::new()
        };
        out.push_str(&format!("{y_label:>label_width$} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>label_width$} +", ""));
    out.push_str(&"-".repeat(columns * col_width));
    out.push('\n');
    out.push_str(&format!("{:>label_width$}  ", ""));
    for l in x_labels {
        out.push_str(&format!("{l:^col_width$}"));
    }
    out.push('\n');
    for s in series {
        out.push_str(&format!("{:>label_width$}  {} {}\n", "", s.mark, s.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_marks_and_legend() {
        let x: Vec<String> = (0..5).map(|i| format!("{}", i * 10)).collect();
        let series = [
            Series {
                label: "rising".into(),
                mark: 'o',
                values: vec![Some(0.0), Some(1.0), Some(2.0), Some(3.0), Some(4.0)],
            },
            Series {
                label: "flat".into(),
                mark: '.',
                values: vec![Some(1.0); 5],
            },
        ];
        let chart = line_chart(&x, &series, 6, "%");
        assert!(chart.contains('o'));
        assert!(chart.contains('.'));
        assert!(chart.contains("rising"));
        assert!(chart.contains("flat"));
        // Top-left y label is the maximum.
        assert!(chart.lines().next().expect("rows").contains("4.0%"));
        // The rising series' last point sits on the top row.
        let top = chart.lines().next().expect("rows");
        assert!(top.contains('o'));
    }

    #[test]
    fn overlap_becomes_star_and_none_is_skipped() {
        let x: Vec<String> = vec!["0".into(), "1".into()];
        let series = [
            Series {
                label: "a".into(),
                mark: 'a',
                values: vec![Some(1.0), None],
            },
            Series {
                label: "b".into(),
                mark: 'b',
                values: vec![Some(1.0), Some(1.0)],
            },
        ];
        let chart = line_chart(&x, &series, 4, "");
        assert!(chart.contains('*'));
        assert!(chart.contains('b'));
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_rejected() {
        let _ = line_chart(
            &["0".to_string()],
            &[Series {
                label: "a".into(),
                mark: 'a',
                values: vec![Some(1.0), Some(2.0)],
            }],
            4,
            "",
        );
    }
}
