//! Benchmarks the probabilistic RTA path (BENCH_prob.json): the cost of
//! a cold `evaluate_prob` sweep (two deterministic solves plus the
//! convolution refinement per point), the warm memoized path, and the
//! convolution refinement (`prob_from_reports`) isolated from the
//! deterministic solves it consumes. All variants are gated by a
//! bit-identity assertion: the engine's cached path must agree with the
//! self-contained `prob_analyze` exactly, per-bin.

use carta_bench::case_study;
use carta_can::prelude::{
    prob_analyze, prob_from_reports, CompiledBus, ProbBusReport, RtaWorkspace,
};
use carta_core::time::Time;
use carta_engine::prelude::{BaseSystem, Evaluator, Parallelism, Scenario, SystemVariant};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const POINTS: usize = 64;

fn batch() -> Vec<SystemVariant> {
    let base = BaseSystem::new(case_study());
    let scenario = Scenario::sporadic_errors(Time::from_ms(10));
    (0..POINTS)
        .map(|i| {
            SystemVariant::new(base.clone(), scenario.clone())
                .with_jitter_ratio(i as f64 / POINTS as f64)
        })
        .collect()
}

fn bench_prob_analysis(c: &mut Criterion) {
    let points = batch();
    let scenario = Scenario::sporadic_errors(Time::from_ms(10));
    let config = scenario.analysis_config();
    let model = scenario.errors.model();
    let mut group = c.benchmark_group("prob_analysis");

    // Bit-identity gate: the engine's cached prob path must reproduce
    // the self-contained analysis for every point — same bins, same
    // masses, same quantiles (ProbBusReport derives PartialEq).
    let gate = Evaluator::default();
    for v in &points {
        let cached = gate.evaluate_prob(v).expect("valid case study");
        let net = v.materialize();
        let direct = prob_analyze(&net, model.as_ref(), &config).expect("valid case study");
        assert_eq!(
            *cached, direct,
            "engine prob path diverged from prob_analyze"
        );
    }

    group.bench_function("prob_cold_64pts", |b| {
        b.iter(|| {
            // Fresh evaluator per iteration: each point pays both
            // deterministic solves plus the convolution refinement.
            let eval = Evaluator::new(Parallelism::new(1));
            for v in &points {
                black_box(eval.evaluate_prob(v).expect("valid case study"));
            }
        })
    });

    let warm = Evaluator::default();
    for v in &points {
        warm.evaluate_prob(v).expect("valid case study");
    }
    group.bench_function("prob_warm_64pts", |b| {
        b.iter(|| {
            for v in &points {
                black_box(warm.evaluate_prob(v).expect("valid case study"));
            }
        })
    });

    // The refinement alone: deterministic reports precomputed, each
    // iteration only convolves and clamps per message.
    let nets: Vec<_> = points.iter().map(|v| v.materialize()).collect();
    let compiled = CompiledBus::compile(&nets[0], config.stuffing).expect("valid case study");
    let mut ws = RtaWorkspace::new();
    let solved: Vec<(_, _)> = nets
        .iter()
        .map(|net| {
            let base = compiled.solve(
                net,
                &carta_can::prelude::NoErrors,
                &config,
                &mut RtaWorkspace::new(),
            );
            let full = compiled.solve(net, model.as_ref(), &config, &mut ws);
            (base, full)
        })
        .collect();
    group.bench_function("prob_refine_64pts", |b| {
        b.iter(|| {
            for (base, full) in &solved {
                let report: ProbBusReport =
                    prob_from_reports(&compiled, base, full, model.as_ref())
                        .expect("valid case study");
                black_box(report);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prob_analysis);
criterion_main!(benches);
