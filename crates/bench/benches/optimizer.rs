//! Benchmarks the SPEA2 CAN-ID optimizer (Sec. 4.3): the paper reports
//! "quickly, we obtained a system that does not loose a single message
//! at 25 % jitter" — these benches quantify "quickly" per generation
//! and for the full experiment budget.

use carta_bench::case_study;
use carta_optim::canid::{optimize_can_ids, OptimizeIdsConfig};
use carta_optim::spea2::Spea2Config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_optimizer_budgets(c: &mut Criterion) {
    let net = case_study();
    let mut group = c.benchmark_group("spea2_canid");
    group.sample_size(10);
    for (label, population, generations) in
        [("small_12x4", 12usize, 4usize), ("medium_24x10", 24, 10)]
    {
        let config = OptimizeIdsConfig {
            spea2: Spea2Config {
                population,
                archive: population / 2,
                generations,
                ..Spea2Config::default()
            },
            ..OptimizeIdsConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| black_box(optimize_can_ids(&net, cfg)))
        });
    }
    group.finish();
}

fn bench_single_evaluation(c: &mut Criterion) {
    use carta_explore::scenario::Scenario;
    use carta_optim::canid::CanIdProblem;
    use carta_optim::spea2::Problem;
    let net = case_study();
    let problem = CanIdProblem::new(&net, Scenario::worst_case(), vec![0.25, 0.60]);
    let rm = problem.rate_monotonic();
    c.bench_function("spea2_one_evaluation", |b| {
        b.iter(|| black_box(problem.evaluate(&rm)))
    });
}

criterion_group!(benches, bench_optimizer_budgets, bench_single_evaluation);
criterion_main!(benches);
