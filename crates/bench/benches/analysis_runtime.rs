//! Benchmarks the core claim behind the paper's workflow: "what-if"
//! analyses run interactively ("within minutes" on 2006 hardware;
//! microseconds here), so OEMs can sweep hundreds of scenarios.

use carta_bench::case_study;
use carta_can::error_model::NoErrors;
use carta_can::rta::{analyze_bus, AnalysisConfig};
use carta_engine::prelude::Evaluator;
use carta_explore::jitter::with_jitter_ratio;
use carta_explore::loss::paper_jitter_grid;
use carta_explore::scenario::Scenario;
use carta_explore::sweeps::Sweeps;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_single_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("bus_analysis");
    for ratio in [0.0, 0.25, 0.60] {
        let net = with_jitter_ratio(&case_study(), ratio);
        group.bench_with_input(
            BenchmarkId::new("worst_case_64msg", format!("{:.0}%", ratio * 100.0)),
            &net,
            |b, net| b.iter(|| black_box(Scenario::worst_case().analyze(net).expect("valid"))),
        );
    }
    let net = case_study();
    group.bench_function("no_errors_64msg", |b| {
        b.iter(|| {
            black_box(analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid"))
        })
    });
    group.finish();
}

fn bench_message_count_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    // Constant 60 % load at every size so runtime growth reflects the
    // algorithm, not a heavier bus.
    for count in [16usize, 32, 64, 128, 256] {
        let net = carta_kmatrix::generator::stress_kmatrix(7, count, 0.60)
            .to_network()
            .expect("convertible");
        group.bench_with_input(BenchmarkId::new("messages", count), &net, |b, net| {
            b.iter(|| black_box(Scenario::worst_case().analyze(net).expect("valid")))
        });
    }
    group.finish();
}

fn bench_full_loss_curve(c: &mut Criterion) {
    let net = case_study();
    let grid = paper_jitter_grid();
    c.bench_function("fig5_one_curve_13_points", |b| {
        // A fresh evaluator per iteration: this benchmark measures the
        // cold analysis, not the memo cache.
        b.iter(|| {
            let eval = Evaluator::default();
            black_box(
                eval.loss_vs_jitter(&net, &Scenario::worst_case(), &grid)
                    .expect("valid"),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_single_analysis,
    bench_message_count_scaling,
    bench_full_loss_curve
);
criterion_main!(benches);
