//! Multi-core batch-solve scaling: the deterministic chunked
//! `evaluate_batch` path at several worker counts, the warm read-pass
//! upper bound, and the raw structure-of-arrays `solve_batch` kernel.
//! The full ~1M-point jitter × error × permutation sweep lives in the
//! `scale` bin, which records BENCH_scale.json; this bench carries the
//! CI-checkable rows (`scale/cold_1024pts_jobs/1`, `scale/warm_1024pts`)
//! the perf gate compares against that record.
//!
//! Before anything is timed, a bit-identity gate evaluates a
//! mixed-permutation grid at jobs 1, 2 and 8 and asserts results — and,
//! for the permutation-free distinct-key prefix, the full `CacheStats`
//! — are identical. CI runs this gate via `--test`.

use carta_bench::{case_study, scale_batch_1k, scale_perms, scale_point};
use carta_can::prelude::{CompiledBus, RtaWorkspace, SolvePoint};
use carta_engine::prelude::{BaseSystem, Evaluator, Parallelism, Scenario, SystemVariant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Results (and, without permutations, cache statistics) must not
/// depend on the worker count — the contract every timed row below
/// rides on.
fn assert_jobs_invariance() {
    let base = BaseSystem::new(case_study());
    let perms = scale_perms(base.network().messages().len(), 2);
    let plain: Vec<SystemVariant> = (0..192)
        .map(|i| scale_point(&base, &perms[..1], 48, 4, i))
        .collect();
    let mixed: Vec<SystemVariant> = (0..192)
        .map(|i| scale_point(&base, &perms, 24, 4, i))
        .collect();
    let mut plain_ref = None;
    let mut mixed_ref = None;
    for jobs in [1usize, 2, 8] {
        let eval = Evaluator::new(Parallelism::new(jobs));
        let out = eval.evaluate_batch(&plain);
        let stats = eval.stats();
        match &plain_ref {
            None => plain_ref = Some((out, stats)),
            Some((ref_out, ref_stats)) => {
                assert_eq!(&stats, ref_stats, "stats diverged at jobs={jobs}");
                for (a, b) in out.iter().zip(ref_out) {
                    assert_eq!(
                        a.as_ref().expect("valid"),
                        b.as_ref().expect("valid"),
                        "plain grid diverged at jobs={jobs}"
                    );
                }
            }
        }
        let eval = Evaluator::new(Parallelism::new(jobs));
        let out = eval.evaluate_batch(&mixed);
        match &mixed_ref {
            None => mixed_ref = Some(out),
            Some(ref_out) => {
                for (a, b) in out.iter().zip(ref_out) {
                    assert_eq!(
                        a.as_ref().expect("valid"),
                        b.as_ref().expect("valid"),
                        "permuted grid diverged at jobs={jobs}"
                    );
                }
            }
        }
    }
}

fn bench_scale(c: &mut Criterion) {
    assert_jobs_invariance();

    let points = scale_batch_1k();
    let mut group = c.benchmark_group("scale");

    // jobs ∈ {1, 2, 4, max}, deduplicated for the cores present — on a
    // single-core host only jobs=1 is a meaningful scaling row, and it
    // doubles as the BENCH_scale.json perf-gate reference.
    let ncpu = Parallelism::available();
    let mut job_counts: Vec<usize> = [1usize, 2, 4, ncpu]
        .into_iter()
        .filter(|&j| j == 1 || j <= ncpu)
        .collect();
    job_counts.sort_unstable();
    job_counts.dedup();
    for jobs in job_counts {
        group.bench_with_input(
            BenchmarkId::new("cold_1024pts_jobs", jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    let eval = Evaluator::new(Parallelism::new(jobs));
                    black_box(eval.evaluate_batch(&points))
                })
            },
        );
    }

    let warm = Evaluator::new(Parallelism::sequential());
    warm.evaluate_batch(&points);
    group.bench_function("warm_1024pts", |b| {
        b.iter(|| black_box(warm.evaluate_batch(&points)))
    });

    // The raw SoA kernel under the engine: one CompiledBus, per-message
    // activation/deadline vectors laid out once, the whole jitter
    // ladder solved in one `solve_batch` call.
    let scenario = Scenario::worst_case();
    let config = scenario.analysis_config();
    let model = scenario.errors.model();
    let base = BaseSystem::new(case_study());
    let n = base.network().messages().len();
    let compiled = CompiledBus::compile(base.network(), config.stuffing).expect("valid case study");
    let variants: Vec<SystemVariant> = (0..64)
        .map(|i| {
            SystemVariant::new(base.clone(), scenario.clone()).with_jitter_ratio(i as f64 / 64.0)
        })
        .collect();
    let solve_points: Vec<SolvePoint> = variants
        .iter()
        .map(|v| {
            let mut p = SolvePoint::new();
            p.fill_with(n, |i| v.solve_row(i));
            p
        })
        .collect();
    // The SoA batch must agree bit-for-bit with per-point solves.
    let mut gate_ws = RtaWorkspace::new();
    let (batch_reports, _) =
        compiled.solve_batch(&solve_points, model.as_ref(), &config, &mut gate_ws);
    for (point, fast) in solve_points.iter().zip(&batch_reports) {
        let naive = compiled.solve_point(point, model.as_ref(), &config, &mut RtaWorkspace::new());
        assert_eq!(&naive, fast, "solve_batch diverged from solve_point");
    }
    let mut ws = RtaWorkspace::new();
    group.bench_function("solve_batch_soa_64pts", |b| {
        b.iter(|| black_box(compiled.solve_batch(&solve_points, model.as_ref(), &config, &mut ws)))
    });
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
