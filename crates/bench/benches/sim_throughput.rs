//! Benchmarks the discrete-event simulator (experiment A2's oracle) and
//! contrasts its cost with the analysis: covering even one second of
//! simulated traffic costs orders of magnitude more than the complete
//! worst-case analysis — the quantitative version of the paper's
//! "simulation is not suitable" argument.

use carta_bench::case_study;
use carta_core::time::Time;
use carta_explore::jitter::with_assumed_unknown_jitter;
use carta_sim::engine::{simulate, SimConfig, SimStuffing};
use carta_sim::inject::{NoInjection, PeriodicInjection};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let net = with_assumed_unknown_jitter(&case_study(), 0.20);
    let mut group = c.benchmark_group("sim");
    group.sample_size(20);
    for horizon_ms in [100u64, 500, 1000] {
        let config = SimConfig {
            horizon: Time::from_ms(horizon_ms),
            stuffing: SimStuffing::Random,
            record_trace: false,
            ..SimConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("no_errors", format!("{horizon_ms}ms")),
            &config,
            |b, cfg| b.iter(|| black_box(simulate(&net, &NoInjection, cfg))),
        );
    }
    let config = SimConfig {
        horizon: Time::from_s(1),
        stuffing: SimStuffing::Random,
        record_trace: false,
        ..SimConfig::default()
    };
    let injector = PeriodicInjection {
        interval: Time::from_us(10_300),
        phase: Time::from_us(77),
    };
    group.bench_function("with_errors_1s", |b| {
        b.iter(|| black_box(simulate(&net, &injector, &config)))
    });
    group.finish();
}

fn bench_trace_recording_overhead(c: &mut Criterion) {
    let net = with_assumed_unknown_jitter(&case_study(), 0.20);
    let mut group = c.benchmark_group("sim_trace_overhead");
    group.sample_size(20);
    for record in [false, true] {
        let config = SimConfig {
            horizon: Time::from_ms(500),
            stuffing: SimStuffing::Random,
            record_trace: record,
            ..SimConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(if record { "recorded" } else { "discarded" }),
            &config,
            |b, cfg| b.iter(|| black_box(simulate(&net, &NoInjection, cfg))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_trace_recording_overhead);
criterion_main!(benches);
