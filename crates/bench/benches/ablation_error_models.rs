//! Ablation **A1** (DESIGN.md): how much each worst-case ingredient —
//! error model, bit stuffing, controller type — costs in analysis time,
//! with the corresponding loss counts printed once as context.

use carta_bench::case_study;
use carta_can::controller::ControllerType;
use carta_core::time::Time;
use carta_explore::jitter::with_jitter_ratio;
use carta_explore::scenario::{DeadlineOverride, ErrorSpec, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn scenarios() -> Vec<Scenario> {
    use carta_can::frame::StuffingMode;
    let burst = ErrorSpec::Burst {
        burst_len: 3,
        intra_gap: Time::from_us(200),
        inter_burst: Time::from_ms(25),
    };
    vec![
        Scenario {
            name: "none/none".into(),
            stuffing: StuffingMode::None,
            errors: ErrorSpec::None,
            deadline: DeadlineOverride::MinReArrival,
        },
        Scenario {
            name: "none/stuffing".into(),
            stuffing: StuffingMode::WorstCase,
            errors: ErrorSpec::None,
            deadline: DeadlineOverride::MinReArrival,
        },
        Scenario {
            name: "sporadic/stuffing".into(),
            stuffing: StuffingMode::WorstCase,
            errors: ErrorSpec::Sporadic {
                interval: Time::from_ms(10),
            },
            deadline: DeadlineOverride::MinReArrival,
        },
        Scenario {
            name: "burst/stuffing".into(),
            stuffing: StuffingMode::WorstCase,
            errors: burst,
            deadline: DeadlineOverride::MinReArrival,
        },
    ]
}

fn bench_error_model_ablation(c: &mut Criterion) {
    let net = with_jitter_ratio(&case_study(), 0.25);
    let mut group = c.benchmark_group("ablation_error_models");
    for scenario in scenarios() {
        let report = scenario.analyze(&net).expect("valid");
        eprintln!(
            "[ablation] {:<20} -> {:>2} of {} messages lost at 25 % jitter",
            scenario.name,
            report.missed_count(),
            report.messages.len()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(&scenario.name),
            &scenario,
            |b, s| b.iter(|| black_box(s.analyze(&net).expect("valid"))),
        );
    }
    group.finish();
}

fn bench_controller_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_controllers");
    for controller in [
        ControllerType::FullCan,
        ControllerType::BasicCan,
        ControllerType::FifoQueue { depth: 4 },
    ] {
        let mut net = case_study();
        // Force every node to the candidate controller type.
        let nodes: Vec<String> = net.nodes().iter().map(|n| n.name.clone()).collect();
        let mut rebuilt = carta_can::network::CanNetwork::new(net.bit_rate());
        for n in &nodes {
            rebuilt.add_node(carta_can::network::Node::new(n.clone(), controller));
        }
        for m in net.messages() {
            rebuilt.add_message(m.clone());
        }
        net = rebuilt;
        let report = Scenario::worst_case()
            .analyze(&with_jitter_ratio(&net, 0.25))
            .expect("valid");
        eprintln!(
            "[ablation] all nodes {:<10} -> {:>2} of {} lost at 25 % jitter",
            controller.label(),
            report.missed_count(),
            report.messages.len()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(controller.label()),
            &net,
            |b, net| {
                b.iter(|| {
                    black_box(
                        Scenario::worst_case()
                            .analyze(&with_jitter_ratio(net, 0.25))
                            .expect("valid"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_error_model_ablation,
    bench_controller_ablation
);
criterion_main!(benches);
