//! Benchmarks the unified evaluation engine (`carta-engine`): batched
//! candidate throughput at different worker counts, the gap between a
//! cold and a warm memo cache, and the cost of metrics collection on
//! the warm path. The warm path is the one every repeat caller (sweeps
//! re-visiting a grid, the GA re-visiting genomes) hits. `warm_64pts`
//! runs with instrumentation compiled in but disabled — the default,
//! where the <2% overhead budget applies (one relaxed atomic load per
//! point) — while `warm_64pts_metrics` prices fully-enabled recording.
//!
//! The `rta_*` variants isolate the compiled RTA kernel itself
//! (BENCH_rta.json): `rta_cold_compiled_64pts` prices the solve phase
//! alone (tables compiled once, every fixpoint cold), and
//! `rta_warm_64pts` adds workspace warm-starting across the sweep. Both
//! are gated by a bit-identity assertion against the naive
//! `analyze_bus` path.

use carta_bench::case_study;
use carta_can::backend::BackendConfig;
use carta_can::network::CanNetwork;
use carta_can::prelude::{analyze_bus, BusReport, CompiledBus, RtaWorkspace};
use carta_engine::prelude::{BaseSystem, Evaluator, Parallelism, Scenario, SystemVariant};
use carta_obs::metrics::MetricsRegistry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

const POINTS: usize = 64;

fn batch() -> Vec<SystemVariant> {
    let base = BaseSystem::new(case_study());
    let scenario = Scenario::worst_case();
    (0..POINTS)
        .map(|i| {
            SystemVariant::new(base.clone(), scenario.clone())
                .with_jitter_ratio(i as f64 / POINTS as f64)
        })
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let points = batch();
    let mut group = c.benchmark_group("engine_throughput");

    let mut job_counts = vec![1usize];
    let ncpu = Parallelism::available();
    if ncpu > 1 {
        job_counts.push(ncpu);
    }
    for jobs in job_counts {
        group.bench_with_input(
            BenchmarkId::new("cold_64pts_jobs", jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    // Fresh evaluator per iteration: every point is a
                    // cache miss, i.e. a full busy-window analysis.
                    let eval = Evaluator::new(Parallelism::new(jobs));
                    black_box(eval.evaluate_batch(&points))
                })
            },
        );
    }

    let warm = Evaluator::default();
    warm.evaluate_batch(&points);
    group.bench_function("warm_64pts", |b| {
        b.iter(|| black_box(warm.evaluate_batch(&points)))
    });

    // Same warm batch with every counter live (explicit registry makes
    // recording unconditional) — the delta to `warm_64pts` is the cost
    // of *enabled* recording, paid only when someone asks for metrics.
    let registry = Arc::new(MetricsRegistry::new());
    let instrumented = Evaluator::builder().metrics(&registry).build();
    let bare = instrumented.evaluate_batch(&points);
    // Instrumentation must not perturb results: the engine is
    // deterministic, so the two evaluators agree bit-for-bit.
    for (a, b) in bare.iter().zip(warm.evaluate_batch(&points)) {
        let (a, b) = (a.as_ref().expect("valid"), b.as_ref().expect("valid"));
        assert_eq!(a.messages.len(), b.messages.len());
        for (x, y) in a.messages.iter().zip(&b.messages) {
            assert_eq!(x.outcome, y.outcome, "metrics changed {}", x.name);
        }
    }
    group.bench_function("warm_64pts_metrics", |b| {
        b.iter(|| black_box(instrumented.evaluate_batch(&points)))
    });

    // Compiled RTA kernel, isolated from the engine's memo cache: the
    // tables are compiled once and each iteration solves all 64 points.
    let nets: Vec<CanNetwork> = points.iter().map(|v| v.materialize()).collect();
    let scenario = Scenario::worst_case();
    let config = scenario.analysis_config();
    let model = scenario.errors.model();
    let compiled = CompiledBus::compile(&nets[0], config.stuffing).expect("valid case study");
    // Bit-identity gate: warm-started and cold compiled solves must
    // both reproduce the naive analysis exactly (this is what CI's
    // `--test` mode asserts).
    let mut gate_ws = RtaWorkspace::new();
    for net in &nets {
        let naive = analyze_bus(net, model.as_ref(), &config).expect("valid case study");
        let warm = compiled.solve(net, model.as_ref(), &config, &mut gate_ws);
        let cold = compiled.solve(net, model.as_ref(), &config, &mut RtaWorkspace::new());
        assert_identical(&warm, &naive, "warm-started compiled solve");
        assert_identical(&cold, &naive, "cold compiled solve");
    }

    group.bench_function("rta_cold_compiled_64pts", |b| {
        b.iter(|| {
            for net in &nets {
                black_box(compiled.solve(net, model.as_ref(), &config, &mut RtaWorkspace::new()));
            }
        })
    });

    let mut ws = RtaWorkspace::new();
    group.bench_function("rta_warm_64pts", |b| {
        b.iter(|| {
            for net in &nets {
                black_box(compiled.solve(net, model.as_ref(), &config, &mut ws));
            }
        })
    });

    // The CAN FD twin of the sweep: same matrix and scenario on the
    // dual-rate backend. Tables are backend-specific, so this prices a
    // full compile-once/solve-64 pass through the FD wire model, gated
    // by its own bit-identity assertion against the naive path.
    let fd_nets: Vec<CanNetwork> = nets
        .iter()
        .map(|n| n.clone().with_backend(BackendConfig::can_fd()))
        .collect();
    let fd_compiled = CompiledBus::compile(&fd_nets[0], config.stuffing).expect("valid case study");
    for net in &fd_nets {
        let naive = analyze_bus(net, model.as_ref(), &config).expect("valid case study");
        let cold = fd_compiled.solve(net, model.as_ref(), &config, &mut RtaWorkspace::new());
        assert_identical(&cold, &naive, "cold FD compiled solve");
    }
    group.bench_function("rta_fd_cold_64pts", |b| {
        b.iter(|| {
            for net in &fd_nets {
                black_box(fd_compiled.solve(
                    net,
                    model.as_ref(),
                    &config,
                    &mut RtaWorkspace::new(),
                ));
            }
        })
    });
    group.finish();
}

/// Every field a report row exposes must match the naive analysis.
fn assert_identical(fast: &BusReport, naive: &BusReport, what: &str) {
    assert_eq!(fast.messages.len(), naive.messages.len(), "{what}");
    assert_eq!(fast.error_model, naive.error_model, "{what}");
    assert_eq!(fast.stuffing, naive.stuffing, "{what}");
    assert_eq!(fast.backend, naive.backend, "{what}");
    for (a, b) in fast.messages.iter().zip(&naive.messages) {
        let identical = a.name == b.name
            && a.id == b.id
            && a.c_max == b.c_max
            && a.c_min == b.c_min
            && a.blocking == b.blocking
            && a.deadline == b.deadline
            && a.outcome == b.outcome
            && a.instances == b.instances;
        assert!(identical, "{what} diverged for `{}`", a.name);
    }
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
