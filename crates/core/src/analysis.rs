//! Common analysis result and error types shared by every local
//! analysis (CAN bus, ECU) and the compositional engine.

use crate::time::Time;
use std::error::Error;
use std::fmt;

/// Best-/worst-case response time of one schedulable entity.
///
/// # Examples
///
/// ```
/// use carta_core::{analysis::ResponseBounds, time::Time};
/// let b = ResponseBounds::new(Time::from_us(200), Time::from_ms(3));
/// assert_eq!(b.jitter_contribution(), Time::from_us(2800));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResponseBounds {
    best: Time,
    worst: Time,
}

impl ResponseBounds {
    /// Creates response bounds.
    ///
    /// # Panics
    ///
    /// Panics if `best > worst`.
    pub fn new(best: Time, worst: Time) -> Self {
        assert!(best <= worst, "best-case response exceeds worst case");
        ResponseBounds { best, worst }
    }

    /// Best-case response time.
    pub fn best(&self) -> Time {
        self.best
    }

    /// Worst-case response time.
    pub fn worst(&self) -> Time {
        self.worst
    }

    /// The response-time interval width `R⁺ − R⁻`, i.e. the jitter this
    /// resource adds to the stream passing through it.
    pub fn jitter_contribution(&self) -> Time {
        self.worst - self.best
    }

    /// `true` if the worst case stays within `deadline`.
    pub fn meets(&self, deadline: Time) -> bool {
        self.worst <= deadline
    }
}

impl fmt::Display for ResponseBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.best, self.worst)
    }
}

/// Why an analysis could not produce bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A busy-window iteration exceeded the horizon: the entity has no
    /// bounded response time (overload at its priority level).
    Unbounded {
        /// Human-readable name of the entity without a bound.
        entity: String,
    },
    /// The global fixpoint iteration did not converge (typically a
    /// cyclic dependency whose jitter grows without bound).
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The system description is malformed.
    InvalidModel(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Unbounded { entity } => {
                write!(f, "no bounded response time for `{entity}` (overload)")
            }
            AnalysisError::NotConverged { iterations } => {
                write!(
                    f,
                    "global analysis did not converge after {iterations} iterations"
                )
            }
            AnalysisError::InvalidModel(msg) => write!(f, "invalid system model: {msg}"),
        }
    }
}

impl Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_accessors_and_jitter() {
        let b = ResponseBounds::new(Time::from_ms(1), Time::from_ms(4));
        assert_eq!(b.best(), Time::from_ms(1));
        assert_eq!(b.worst(), Time::from_ms(4));
        assert_eq!(b.jitter_contribution(), Time::from_ms(3));
        assert!(b.meets(Time::from_ms(4)));
        assert!(!b.meets(Time::from_ms(3)));
    }

    #[test]
    #[should_panic(expected = "best-case response exceeds worst case")]
    fn inverted_bounds_rejected() {
        let _ = ResponseBounds::new(Time::from_ms(2), Time::from_ms(1));
    }

    #[test]
    fn errors_display() {
        let e = AnalysisError::Unbounded {
            entity: "msg_17".into(),
        };
        assert!(e.to_string().contains("msg_17"));
        let e = AnalysisError::NotConverged { iterations: 64 };
        assert!(e.to_string().contains("64"));
        let e = AnalysisError::InvalidModel("dangling edge".into());
        assert!(e.to_string().contains("dangling edge"));
    }
}
