//! Common analysis result and error types shared by every local
//! analysis (CAN bus, ECU) and the compositional engine.

use crate::time::Time;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Best-/worst-case response time of one schedulable entity.
///
/// # Examples
///
/// ```
/// use carta_core::{analysis::ResponseBounds, time::Time};
/// let b = ResponseBounds::new(Time::from_us(200), Time::from_ms(3));
/// assert_eq!(b.jitter_contribution(), Time::from_us(2800));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResponseBounds {
    best: Time,
    worst: Time,
}

impl ResponseBounds {
    /// Creates response bounds.
    ///
    /// # Panics
    ///
    /// Panics if `best > worst`.
    pub fn new(best: Time, worst: Time) -> Self {
        assert!(best <= worst, "best-case response exceeds worst case");
        ResponseBounds { best, worst }
    }

    /// Best-case response time.
    pub fn best(&self) -> Time {
        self.best
    }

    /// Worst-case response time.
    pub fn worst(&self) -> Time {
        self.worst
    }

    /// The response-time interval width `R⁺ − R⁻`, i.e. the jitter this
    /// resource adds to the stream passing through it.
    pub fn jitter_contribution(&self) -> Time {
        self.worst - self.best
    }

    /// `true` if the worst case stays within `deadline`.
    pub fn meets(&self, deadline: Time) -> bool {
        self.worst <= deadline
    }
}

impl fmt::Display for ResponseBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.best, self.worst)
    }
}

/// Why an analysis could not produce bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// A busy-window iteration exceeded the horizon: the entity has no
    /// bounded response time (overload at its priority level).
    Unbounded {
        /// Interned name of the entity without a bound. `Arc<str>` so
        /// hot paths (compiled kernel, batch evaluation) can construct
        /// the error without allocating a fresh `String` per failure.
        entity: Arc<str>,
    },
    /// The global fixpoint iteration did not converge (typically a
    /// cyclic dependency whose jitter grows without bound), or a
    /// divergence budget (iteration or wall-clock) was exhausted first.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The system description is malformed.
    InvalidModel(String),
    /// The analysis panicked and the panic was contained by the
    /// engine's fault isolation. Transient by construction: such a
    /// result is never memoized, so retrying the point re-runs the
    /// analysis from scratch.
    Panicked {
        /// Panic payload rendered as text (best effort).
        detail: String,
    },
    /// The evaluation was cancelled cooperatively (request deadline,
    /// server drain, or an explicit [`crate::cancel::CancelToken`]
    /// trip) before this point's analysis completed. Like
    /// [`AnalysisError::Panicked`], transient by construction: a
    /// cancelled result is never memoized, so retrying the point
    /// re-runs the analysis from scratch. Points that completed before
    /// the trip are unaffected and bit-identical to an uncancelled run.
    Cancelled,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Unbounded { entity } => {
                write!(f, "no bounded response time for `{entity}` (overload)")
            }
            AnalysisError::NotConverged { iterations } => {
                write!(
                    f,
                    "global analysis did not converge after {iterations} iterations"
                )
            }
            AnalysisError::InvalidModel(msg) => write!(f, "invalid system model: {msg}"),
            AnalysisError::Panicked { detail } => {
                write!(f, "analysis panicked (contained): {detail}")
            }
            AnalysisError::Cancelled => {
                write!(f, "evaluation cancelled before completion")
            }
        }
    }
}

impl Error for AnalysisError {}

/// Why one entity's fixpoint was abandoned before convergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceCause {
    /// The busy window grew past the analysis horizon: demand exceeds
    /// capacity at this priority level (genuine overload).
    HorizonExceeded {
        /// The horizon in force when the fixpoint was abandoned.
        horizon: Time,
    },
    /// More queued instances than the configured cap — the busy window
    /// keeps absorbing fresh activations without draining.
    InstanceLimit {
        /// The instance cap in force.
        limit: u64,
    },
    /// The per-entity iteration budget ran out before the window
    /// stabilised (pathological convergence, not provable overload).
    IterationBudget {
        /// The iteration budget in force.
        budget: u64,
    },
}

impl fmt::Display for DivergenceCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceCause::HorizonExceeded { horizon } => {
                write!(f, "busy window exceeded the {horizon} horizon")
            }
            DivergenceCause::InstanceLimit { limit } => {
                write!(f, "more than {limit} queued instances")
            }
            DivergenceCause::IterationBudget { budget } => {
                write!(f, "iteration budget of {budget} exhausted")
            }
        }
    }
}

/// Degraded-mode diagnostic for one entity whose fixpoint diverged.
///
/// Instead of aborting the whole report, the analysis records *why*
/// this entity has no bounds — its priority level, how far the busy
/// window had grown when the fixpoint was abandoned, and the
/// interference set that overloaded it — while every other entity
/// keeps its sound bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageDiagnostic {
    /// Interned name of the diverged entity.
    pub entity: Arc<str>,
    /// Arbitration rank: number of strictly stronger (higher-priority)
    /// entities on the shared resource. `0` means highest priority.
    pub priority_level: usize,
    /// Busy-window length when the fixpoint was abandoned — a lower
    /// bound on the true (possibly infinite) busy period.
    pub busy_window: Time,
    /// Queued instances examined before the abort.
    pub instances: u64,
    /// Interned names of the entities whose demand is included in this
    /// entity's busy window (the interference set that overloaded it).
    pub interference: Vec<Arc<str>>,
    /// Which budget the fixpoint exhausted.
    pub cause: DivergenceCause,
}

impl MessageDiagnostic {
    /// The matching coarse [`AnalysisError`] for callers that need a
    /// single error value rather than a per-entity report.
    pub fn to_error(&self) -> AnalysisError {
        AnalysisError::Unbounded {
            entity: self.entity.clone(),
        }
    }
}

impl fmt::Display for MessageDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` diverged at priority level {} ({}): busy window {} after {} instance(s), {} interferer(s)",
            self.entity,
            self.priority_level,
            self.cause,
            self.busy_window,
            self.instances,
            self.interference.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_accessors_and_jitter() {
        let b = ResponseBounds::new(Time::from_ms(1), Time::from_ms(4));
        assert_eq!(b.best(), Time::from_ms(1));
        assert_eq!(b.worst(), Time::from_ms(4));
        assert_eq!(b.jitter_contribution(), Time::from_ms(3));
        assert!(b.meets(Time::from_ms(4)));
        assert!(!b.meets(Time::from_ms(3)));
    }

    #[test]
    #[should_panic(expected = "best-case response exceeds worst case")]
    fn inverted_bounds_rejected() {
        let _ = ResponseBounds::new(Time::from_ms(2), Time::from_ms(1));
    }

    #[test]
    fn errors_display() {
        let e = AnalysisError::Unbounded {
            entity: "msg_17".into(),
        };
        assert!(e.to_string().contains("msg_17"));
        let e = AnalysisError::NotConverged { iterations: 64 };
        assert!(e.to_string().contains("64"));
        let e = AnalysisError::InvalidModel("dangling edge".into());
        assert!(e.to_string().contains("dangling edge"));
        let e = AnalysisError::Panicked {
            detail: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("contained"));
    }

    #[test]
    fn diagnostic_display_and_error_conversion() {
        let d = MessageDiagnostic {
            entity: "flood".into(),
            priority_level: 3,
            busy_window: Time::from_ms(12),
            instances: 7,
            interference: vec!["a".into(), "b".into()],
            cause: DivergenceCause::HorizonExceeded {
                horizon: Time::from_s(10),
            },
        };
        let text = d.to_string();
        assert!(text.contains("flood"), "{text}");
        assert!(text.contains("level 3"), "{text}");
        assert!(text.contains("2 interferer"), "{text}");
        assert_eq!(
            d.to_error(),
            AnalysisError::Unbounded {
                entity: "flood".into()
            }
        );

        let caps = [
            DivergenceCause::InstanceLimit { limit: 4096 }.to_string(),
            DivergenceCause::IterationBudget { budget: 100_000 }.to_string(),
        ];
        assert!(caps[0].contains("4096"), "{}", caps[0]);
        assert!(caps[1].contains("100000"), "{}", caps[1]);
    }
}
