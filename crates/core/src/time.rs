//! Discrete time values.
//!
//! All of `carta` computes on integer **nanoseconds** wrapped in the
//! [`Time`] newtype. Integer time makes every analysis exactly
//! reproducible (no floating-point drift in fixpoint iterations) and is
//! fine-grained enough to represent single bit times of a 1 Mbit/s CAN
//! bus (1000 ns) and far beyond.
//!
//! `Time` is used both for *instants* (simulator clocks) and *durations*
//! (periods, jitters, response times); the analysis literature the crate
//! implements does the same, and a separate instant type would buy little
//! here while doubling the API surface.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A non-negative time value in integer nanoseconds.
///
/// # Examples
///
/// ```
/// use carta_core::time::Time;
///
/// let period = Time::from_ms(10);
/// let jitter = period.percent(25);
/// assert_eq!(jitter, Time::from_ms(2) + Time::from_us(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The zero duration / epoch instant.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "unbounded" sentinel in
    /// a few saturating computations.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub const fn from_s(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// The duration of `bits` bit times on a bus transmitting at
    /// `bit_rate` bits per second, rounded **up** to whole nanoseconds
    /// (conservative for worst-case analysis).
    ///
    /// # Panics
    ///
    /// Panics if `bit_rate` is zero.
    #[inline]
    pub fn from_bits(bits: u64, bit_rate: u64) -> Self {
        assert!(bit_rate > 0, "bit rate must be positive");
        // bits * 1e9 / rate, rounded up.
        let num = (bits as u128) * 1_000_000_000u128;
        let rate = bit_rate as u128;
        Time(num.div_ceil(rate) as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Value in (possibly fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in (possibly fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in (possibly fractional) seconds.
    #[inline]
    pub fn as_s_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// `true` if the value is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: clamps at [`Time::MAX`].
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Checked multiplication by a scalar.
    #[inline]
    pub const fn checked_mul(self, rhs: u64) -> Option<Time> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating multiplication by a scalar.
    #[inline]
    pub const fn saturating_mul(self, rhs: u64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }

    /// `ceil(self / divisor)` as a pure count.
    ///
    /// This is the ubiquitous interference term of response-time
    /// analysis: `⌈Δt / T⌉`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[inline]
    pub fn div_ceil(self, divisor: Time) -> u64 {
        assert!(!divisor.is_zero(), "division by zero time");
        self.0.div_ceil(divisor.0)
    }

    /// `floor(self / divisor)` as a pure count.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[inline]
    pub fn div_floor(self, divisor: Time) -> u64 {
        assert!(!divisor.is_zero(), "division by zero time");
        self.0 / divisor.0
    }

    /// `percent`% of this time, rounded down (exact for the multiples
    /// used throughout the case study).
    ///
    /// # Examples
    ///
    /// ```
    /// use carta_core::time::Time;
    /// assert_eq!(Time::from_ms(10).percent(30), Time::from_ms(3));
    /// ```
    #[inline]
    pub fn percent(self, percent: u64) -> Time {
        Time((self.0 as u128 * percent as u128 / 100) as u64)
    }

    /// Scales this time by a non-negative factor, rounding to nearest.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative, NaN, or the result overflows.
    #[inline]
    pub fn scale(self, factor: f64) -> Time {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        let v = (self.0 as f64 * factor).round();
        assert!(v <= u64::MAX as f64, "scaled time overflows");
        Time(v as u64)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    // Arithmetic overflow on the 584-year u64 nanosecond range is a
    // programming error, not a modeling error: fail loudly.
    #[allow(clippy::expect_used)]
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("time addition overflow"))
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics on underflow; use [`Time::saturating_sub`] when the
    /// operands may be unordered.
    #[allow(clippy::expect_used)]
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("time subtraction underflow"),
        )
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[allow(clippy::expect_used)]
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(
            self.0
                .checked_mul(rhs)
                .expect("time multiplication overflow"),
        )
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        rhs * self
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem<Time> for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    /// Human-readable rendering with an adaptive unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl From<u64> for Time {
    /// Interprets the raw integer as nanoseconds.
    fn from(ns: u64) -> Self {
        Time(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Time::from_us(1).as_ns(), 1_000);
        assert_eq!(Time::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(Time::from_s(1).as_ns(), 1_000_000_000);
        assert_eq!(Time::from_ns(7).as_ns(), 7);
    }

    #[test]
    fn from_bits_rounds_up() {
        // 1 bit at 500 kbit/s = 2000 ns exactly.
        assert_eq!(Time::from_bits(1, 500_000), Time::from_us(2));
        // 135 bits (8-byte worst-case frame) at 500 kbit/s = 270 us.
        assert_eq!(Time::from_bits(135, 500_000), Time::from_us(270));
        // 1 bit at 3 bits/s = 333333333.33 -> rounded up.
        assert_eq!(Time::from_bits(1, 3).as_ns(), 333_333_334);
    }

    #[test]
    #[should_panic(expected = "bit rate must be positive")]
    fn from_bits_rejects_zero_rate() {
        let _ = Time::from_bits(1, 0);
    }

    #[test]
    fn div_ceil_and_floor() {
        let t = Time::from_ns(10);
        assert_eq!(t.div_ceil(Time::from_ns(3)), 4);
        assert_eq!(t.div_floor(Time::from_ns(3)), 3);
        assert_eq!(t.div_ceil(Time::from_ns(5)), 2);
        assert_eq!(t.div_floor(Time::from_ns(5)), 2);
    }

    #[test]
    fn percent_is_exact_on_case_study_values() {
        let p = Time::from_ms(20);
        assert_eq!(p.percent(0), Time::ZERO);
        assert_eq!(p.percent(10), Time::from_ms(2));
        assert_eq!(p.percent(25), Time::from_ms(5));
        assert_eq!(p.percent(100), p);
        assert_eq!(p.percent(150), Time::from_ms(30));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            Time::from_ns(3).saturating_sub(Time::from_ns(5)),
            Time::ZERO
        );
        assert_eq!(Time::MAX.saturating_add(Time::from_ns(1)), Time::MAX);
        assert_eq!(Time::MAX.saturating_mul(2), Time::MAX);
    }

    #[test]
    fn display_uses_adaptive_units() {
        assert_eq!(Time::ZERO.to_string(), "0");
        assert_eq!(Time::from_ns(5).to_string(), "5ns");
        assert_eq!(Time::from_us(5).to_string(), "5us");
        assert_eq!(Time::from_ms(5).to_string(), "5ms");
        assert_eq!(Time::from_s(5).to_string(), "5s");
    }

    #[test]
    fn scale_rounds_to_nearest() {
        assert_eq!(Time::from_ns(10).scale(0.25), Time::from_ns(3)); // 2.5 -> 3 (round half away)
        assert_eq!(Time::from_ns(10).scale(1.0), Time::from_ns(10));
        assert_eq!(Time::from_ns(10).scale(0.0), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "time subtraction underflow")]
    fn sub_panics_on_underflow() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [Time::from_ms(1), Time::from_ms(2), Time::from_ms(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Time::from_ms(6));
    }
}
