//! Cooperative cancellation for long-running analyses.
//!
//! A [`CancelToken`] is a shared atomic flag plus an optional deadline.
//! Producers (a server drain, a per-request deadline, a test harness)
//! arm it; the engine's solve loops poll it at chunk and message
//! boundaries and abandon work with
//! [`AnalysisError::Cancelled`](crate::analysis::AnalysisError::Cancelled)
//! instead of running to completion.
//!
//! Cancellation is *cooperative and typed*: a cancelled evaluation
//! returns an error for the points it never finished, while every point
//! that completed before the trip is bit-identical to an uncancelled
//! run (the engine never caches or publishes partial solves).
//!
//! Tokens form a chain: [`CancelToken::child`] shares the parent's
//! flag (and deadline) while carrying its own, so a server can hold one
//! drain token and derive a per-request token with a tighter deadline —
//! cancelling the parent trips every child at once.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel for "no deadline" in the atomic nanosecond slot.
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    /// Explicit cancellation (drain, client gone, test).
    cancelled: AtomicBool,
    /// Deadline as nanoseconds after `base`; [`NO_DEADLINE`] when unset.
    deadline_ns: AtomicU64,
    /// The instant `deadline_ns` counts from (token creation).
    base: Instant,
    /// Ancestors whose cancellation trips this token too.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn is_cancelled(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        let deadline = self.deadline_ns.load(Ordering::Relaxed);
        if deadline != NO_DEADLINE && elapsed_ns(self.base) >= deadline {
            return true;
        }
        match &self.parent {
            Some(parent) => parent.is_cancelled(),
            None => false,
        }
    }
}

fn elapsed_ns(base: Instant) -> u64 {
    u64::try_from(base.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(NO_DEADLINE - 1)
}

/// A shared, cloneable cancellation handle (flag + optional deadline).
///
/// Clones share state: cancelling any clone cancels them all. See the
/// [module docs](self) for the chaining contract.
///
/// ```
/// use carta_core::cancel::CancelToken;
/// use std::time::Duration;
///
/// let drain = CancelToken::new();
/// let request = drain.child_with_deadline(Some(Duration::from_secs(5)));
/// assert!(!request.is_cancelled());
/// drain.cancel();
/// assert!(request.is_cancelled(), "parent cancellation trips children");
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(NO_DEADLINE),
                base: Instant::now(),
                parent: None,
            }),
        }
    }

    /// A token that trips once `deadline` has elapsed from now (or when
    /// cancelled explicitly, whichever comes first).
    pub fn with_deadline(deadline: Duration) -> Self {
        let token = CancelToken::new();
        token.set_deadline(deadline);
        token
    }

    /// A child sharing this token's cancellation (and deadline) while
    /// carrying its own: the child trips when *either* its own deadline
    /// passes or any ancestor cancels. `deadline` is measured from now.
    pub fn child_with_deadline(&self, deadline: Option<Duration>) -> CancelToken {
        let child = CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_ns: AtomicU64::new(NO_DEADLINE),
                base: Instant::now(),
                parent: Some(Arc::clone(&self.inner)),
            }),
        };
        if let Some(deadline) = deadline {
            child.set_deadline(deadline);
        }
        child
    }

    /// Arms (or tightens) the deadline to `deadline` from now.
    pub fn set_deadline(&self, deadline: Duration) {
        self.inner.deadline_ns.store(
            elapsed_ns(self.inner.base).saturating_add(duration_ns(deadline)),
            Ordering::Relaxed,
        );
    }

    /// Trips the token (and every clone and child) immediately.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether work holding this token should stop: explicitly
    /// cancelled, past its deadline, or any ancestor cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.inner.is_cancelled()
    }

    /// Time left until this token's own deadline (`None` when no
    /// deadline is armed; zero once it has passed). Ancestors'
    /// deadlines are not consulted — use [`CancelToken::is_cancelled`]
    /// for the effective verdict.
    pub fn remaining(&self) -> Option<Duration> {
        let deadline = self.inner.deadline_ns.load(Ordering::Relaxed);
        if deadline == NO_DEADLINE {
            return None;
        }
        Some(Duration::from_nanos(
            deadline.saturating_sub(elapsed_ns(self.inner.base)),
        ))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tokens_never_cancel_until_asked() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadlines_trip_without_an_explicit_cancel() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled(), "a zero deadline has already passed");
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().is_some_and(|r| r > Duration::from_secs(3590)));
    }

    #[test]
    fn children_trip_on_parent_cancel_or_own_deadline() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Some(Duration::from_secs(3600)));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());
        assert!(parent.child_with_deadline(None).remaining().is_none());

        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Some(Duration::ZERO));
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "children never trip parents");
    }

    #[test]
    fn set_deadline_tightens() {
        let t = CancelToken::new();
        t.set_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
    }
}
