//! The compositional (global) analysis engine.
//!
//! SymTA/S composes *local* schedulability analyses — one per shared
//! resource (a CAN bus, an ECU scheduler) — into a system-level analysis
//! by exchanging **event models** at the resource boundaries
//! (refs. \[12,13\] of the paper):
//!
//! 1. every resource is analyzed locally against the current activation
//!    event models of its slots,
//! 2. each slot's response-time interval turns its input model into an
//!    output model (`J_out = J_in + (R⁺ − R⁻)`, see
//!    [`EventModel::propagate`]),
//! 3. output models are propagated along dependency edges (e.g. a CAN
//!    message activating a gateway task which queues a message on a
//!    second bus), and
//! 4. the loop repeats until all event models are stable (a fixpoint)
//!    or an iteration budget is exhausted (non-convergence, typically a
//!    cyclic dependency with unbounded jitter growth).
//!
//! [`EventModel::propagate`]: crate::event_model::EventModel::propagate

use crate::analysis::{AnalysisError, ResponseBounds};
use crate::event_model::EventModel;
use crate::time::Time;
use std::collections::HashMap;

/// Identifies one schedulable slot on one resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    /// Index of the resource within the [`CompositionalSystem`].
    pub resource: usize,
    /// Slot index within the resource (resource-local).
    pub slot: usize,
}

impl NodeRef {
    /// Creates a node reference.
    pub fn new(resource: usize, slot: usize) -> Self {
        NodeRef { resource, slot }
    }
}

/// What a local analysis reports per slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotResponse {
    /// Best/worst-case response time of the slot.
    pub bounds: ResponseBounds,
    /// Minimum spacing of consecutive outputs (usually the minimum
    /// execution/transmission time); becomes `dmin` of the output model.
    pub min_output_spacing: Time,
}

/// A shared resource with a local schedulability analysis.
///
/// Implementors receive one activation [`EventModel`] per slot and must
/// return one [`SlotResponse`] per slot (same order).
pub trait Resource {
    /// Resource name used in diagnostics.
    fn name(&self) -> &str;

    /// Number of schedulable slots (tasks / messages) on this resource.
    fn slot_count(&self) -> usize;

    /// Human-readable name of one slot, used in diagnostics.
    fn slot_name(&self, slot: usize) -> String {
        format!("{}[{slot}]", self.name())
    }

    /// Runs the local analysis.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::Unbounded`] if any slot has no bounded
    /// response under the given activations, or
    /// [`AnalysisError::InvalidModel`] for malformed inputs.
    fn analyze(&self, activations: &[EventModel]) -> Result<Vec<SlotResponse>, AnalysisError>;
}

/// Result of a converged global analysis.
#[derive(Debug, Clone)]
pub struct GlobalAnalysis {
    activations: Vec<Vec<EventModel>>,
    responses: Vec<Vec<SlotResponse>>,
    iterations: usize,
}

impl GlobalAnalysis {
    /// Response bounds of a slot.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn response(&self, node: NodeRef) -> ResponseBounds {
        self.responses[node.resource][node.slot].bounds
    }

    /// The converged activation event model of a slot.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn activation(&self, node: NodeRef) -> EventModel {
        self.activations[node.resource][node.slot]
    }

    /// The output event model a slot emits downstream.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn output(&self, node: NodeRef) -> EventModel {
        let resp = &self.responses[node.resource][node.slot];
        self.activations[node.resource][node.slot].propagate(
            resp.bounds.best(),
            resp.bounds.worst(),
            resp.min_output_spacing,
        )
    }

    /// Number of global iterations until the fixpoint.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Sums the response bounds along a hop sequence — a sound (though
    /// conservative) end-to-end latency bound for an event-driven
    /// chain such as sensor → bus → gateway task → bus → actuator.
    /// Use [`CompositionalSystem::path_latency`] to also verify the
    /// hops are actually connected.
    ///
    /// # Panics
    ///
    /// Panics if any hop is out of range.
    pub fn sum_latency(&self, hops: &[NodeRef]) -> ResponseBounds {
        let mut best = Time::ZERO;
        let mut worst = Time::ZERO;
        for &hop in hops {
            let r = self.response(hop);
            best += r.best();
            worst += r.worst();
        }
        ResponseBounds::new(best, worst)
    }
}

/// A system of resources coupled by event-model propagation.
///
/// # Examples
///
/// ```
/// use carta_core::comp::{CompositionalSystem, NodeRef, Resource, SlotResponse};
/// use carta_core::analysis::{AnalysisError, ResponseBounds};
/// use carta_core::event_model::EventModel;
/// use carta_core::time::Time;
///
/// struct Wire; // a trivial one-slot resource with constant latency
/// impl Resource for Wire {
///     fn name(&self) -> &str { "wire" }
///     fn slot_count(&self) -> usize { 1 }
///     fn analyze(&self, a: &[EventModel]) -> Result<Vec<SlotResponse>, AnalysisError> {
///         Ok(a.iter().map(|_| SlotResponse {
///             bounds: ResponseBounds::new(Time::from_us(100), Time::from_us(300)),
///             min_output_spacing: Time::from_us(100),
///         }).collect())
///     }
/// }
///
/// # fn main() -> Result<(), AnalysisError> {
/// let mut sys = CompositionalSystem::new();
/// let a = sys.add_resource(Box::new(Wire));
/// let b = sys.add_resource(Box::new(Wire));
/// sys.set_source(NodeRef::new(a, 0), EventModel::periodic(Time::from_ms(10)))?;
/// sys.connect(NodeRef::new(a, 0), NodeRef::new(b, 0))?;
/// let result = sys.analyze()?;
/// // The second hop sees the first hop's response jitter (200 us).
/// assert_eq!(result.activation(NodeRef::new(b, 0)).jitter(), Time::from_us(200));
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct CompositionalSystem {
    resources: Vec<Box<dyn Resource>>,
    sources: HashMap<NodeRef, EventModel>,
    edges: HashMap<NodeRef, NodeRef>, // target -> upstream source
    max_iterations: usize,
    wall_budget: Option<std::time::Duration>,
}

impl CompositionalSystem {
    /// Creates an empty system with the default iteration budget (64)
    /// and no wall-clock budget.
    pub fn new() -> Self {
        CompositionalSystem {
            resources: Vec::new(),
            sources: HashMap::new(),
            edges: HashMap::new(),
            max_iterations: 64,
            wall_budget: None,
        }
    }

    /// Overrides the global iteration budget.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Caps the wall-clock time the global fixpoint may spend. When the
    /// budget is exhausted the iteration is abandoned with
    /// [`AnalysisError::NotConverged`] — preferable to an unbounded
    /// stall when a pathological model couples many slow resources.
    /// Iteration budgets stay the primary control because they are
    /// deterministic; the wall budget is a backstop for deployments
    /// where latency matters more than reproducibility of the abort
    /// point.
    pub fn with_wall_budget(mut self, budget: std::time::Duration) -> Self {
        self.wall_budget = Some(budget);
        self
    }

    /// Adds a resource, returning its index.
    pub fn add_resource(&mut self, resource: Box<dyn Resource>) -> usize {
        self.resources.push(resource);
        self.resources.len() - 1
    }

    /// Number of resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Declares `node` to be activated by an external event source.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidModel`] if the node is out of
    /// range or already activated by an edge.
    pub fn set_source(&mut self, node: NodeRef, model: EventModel) -> Result<(), AnalysisError> {
        self.check_node(node)?;
        if self.edges.contains_key(&node) {
            return Err(AnalysisError::InvalidModel(format!(
                "node {node:?} already activated by an edge"
            )));
        }
        self.sources.insert(node, model);
        Ok(())
    }

    /// Declares that the output stream of `from` activates `to`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidModel`] if either node is out of
    /// range, `to` already has an activation, or `from == to`.
    pub fn connect(&mut self, from: NodeRef, to: NodeRef) -> Result<(), AnalysisError> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(AnalysisError::InvalidModel(format!(
                "self-activation of {to:?}"
            )));
        }
        if self.sources.contains_key(&to) || self.edges.contains_key(&to) {
            return Err(AnalysisError::InvalidModel(format!(
                "node {to:?} already has an activation"
            )));
        }
        self.edges.insert(to, from);
        Ok(())
    }

    fn check_node(&self, node: NodeRef) -> Result<(), AnalysisError> {
        let ok = node.resource < self.resources.len()
            && node.slot < self.resources[node.resource].slot_count();
        if ok {
            Ok(())
        } else {
            Err(AnalysisError::InvalidModel(format!(
                "node {node:?} out of range"
            )))
        }
    }

    /// End-to-end latency of a connected hop chain: verifies that each
    /// consecutive pair is linked by a propagation edge, then sums the
    /// per-hop response bounds from `analysis`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidModel`] if the chain is empty or
    /// a pair of consecutive hops is not connected.
    pub fn path_latency(
        &self,
        analysis: &GlobalAnalysis,
        hops: &[NodeRef],
    ) -> Result<ResponseBounds, AnalysisError> {
        if hops.is_empty() {
            return Err(AnalysisError::InvalidModel("empty path".into()));
        }
        for pair in hops.windows(2) {
            if self.edges.get(&pair[1]) != Some(&pair[0]) {
                return Err(AnalysisError::InvalidModel(format!(
                    "path hop {:?} is not activated by {:?}",
                    pair[1], pair[0]
                )));
            }
        }
        Ok(analysis.sum_latency(hops))
    }

    /// Runs the global fixpoint iteration.
    ///
    /// # Errors
    ///
    /// * [`AnalysisError::InvalidModel`] if any slot has no activation
    ///   (neither a source nor an incoming edge, possibly transitively).
    /// * [`AnalysisError::Unbounded`] propagated from a local analysis.
    /// * [`AnalysisError::NotConverged`] if event models keep changing
    ///   after the iteration budget.
    pub fn analyze(&self) -> Result<GlobalAnalysis, AnalysisError> {
        let mut activations = self.initial_activations()?;
        let mut responses: Vec<Vec<SlotResponse>> = Vec::new();
        let started = std::time::Instant::now();

        for iteration in 1..=self.max_iterations {
            if let Some(budget) = self.wall_budget {
                if started.elapsed() >= budget {
                    return Err(AnalysisError::NotConverged {
                        iterations: iteration - 1,
                    });
                }
            }
            responses.clear();
            for (i, r) in self.resources.iter().enumerate() {
                responses.push(r.analyze(&activations[i])?);
            }

            let mut changed = false;
            for (&to, &from) in &self.edges {
                let resp = &responses[from.resource][from.slot];
                let out = activations[from.resource][from.slot].propagate(
                    resp.bounds.best(),
                    resp.bounds.worst(),
                    resp.min_output_spacing,
                );
                if activations[to.resource][to.slot] != out {
                    activations[to.resource][to.slot] = out;
                    changed = true;
                }
            }
            if !changed {
                return Ok(GlobalAnalysis {
                    activations,
                    responses,
                    iterations: iteration,
                });
            }
        }
        let _ = responses;
        Err(AnalysisError::NotConverged {
            iterations: self.max_iterations,
        })
    }

    /// Builds the initial activation vector: external sources as given;
    /// edge-activated slots start from their (transitive) source model
    /// with unchanged jitter, which the iteration then inflates.
    fn initial_activations(&self) -> Result<Vec<Vec<EventModel>>, AnalysisError> {
        let mut activations: Vec<Vec<Option<EventModel>>> = self
            .resources
            .iter()
            .map(|r| vec![None; r.slot_count()])
            .collect();
        for (&node, &model) in &self.sources {
            activations[node.resource][node.slot] = Some(model);
        }
        // Resolve edge-activated nodes by walking upstream (with a hop
        // limit to catch cycles that never reach a source).
        let total: usize = self.resources.iter().map(|r| r.slot_count()).sum();
        for (r, res) in self.resources.iter().enumerate() {
            for s in 0..res.slot_count() {
                let node = NodeRef::new(r, s);
                if activations[node.resource][node.slot].is_some() {
                    continue;
                }
                let mut cur = node;
                let mut hops = 0;
                let model = loop {
                    match self.edges.get(&cur) {
                        Some(&up) => {
                            if let Some(m) = self.sources.get(&up) {
                                break *m;
                            }
                            cur = up;
                            hops += 1;
                            if hops > total {
                                return Err(AnalysisError::InvalidModel(format!(
                                    "activation cycle without external source at {node:?}"
                                )));
                            }
                        }
                        None => {
                            return Err(AnalysisError::InvalidModel(format!(
                                "slot `{}` has no activation",
                                self.resources[node.resource].slot_name(node.slot)
                            )));
                        }
                    }
                };
                activations[node.resource][node.slot] = Some(model);
            }
        }
        let mut resolved = Vec::with_capacity(activations.len());
        for row in activations {
            let mut slots = Vec::with_capacity(row.len());
            for m in row {
                match m {
                    Some(m) => slots.push(m),
                    None => {
                        return Err(AnalysisError::InvalidModel(
                            "activation slot left unresolved after propagation".into(),
                        ))
                    }
                }
            }
            resolved.push(slots);
        }
        Ok(resolved)
    }
}

impl std::fmt::Debug for CompositionalSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositionalSystem")
            .field("resources", &self.resources.len())
            .field("sources", &self.sources.len())
            .field("edges", &self.edges.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-slot resource with fixed response bounds.
    struct FixedDelay {
        name: String,
        best: Time,
        worst: Time,
    }

    impl FixedDelay {
        fn new(name: &str, best_us: u64, worst_us: u64) -> Self {
            FixedDelay {
                name: name.into(),
                best: Time::from_us(best_us),
                worst: Time::from_us(worst_us),
            }
        }
    }

    impl Resource for FixedDelay {
        fn name(&self) -> &str {
            &self.name
        }
        fn slot_count(&self) -> usize {
            1
        }
        fn analyze(&self, a: &[EventModel]) -> Result<Vec<SlotResponse>, AnalysisError> {
            Ok(a.iter()
                .map(|_| SlotResponse {
                    bounds: ResponseBounds::new(self.best, self.worst),
                    min_output_spacing: self.best,
                })
                .collect())
        }
    }

    /// A resource whose response jitter grows with its input jitter —
    /// used to build a diverging cycle.
    struct Amplifier;

    impl Resource for Amplifier {
        fn name(&self) -> &str {
            "amp"
        }
        fn slot_count(&self) -> usize {
            1
        }
        fn analyze(&self, a: &[EventModel]) -> Result<Vec<SlotResponse>, AnalysisError> {
            Ok(a.iter()
                .map(|em| SlotResponse {
                    bounds: ResponseBounds::new(Time::ZERO, em.jitter() + Time::from_us(10)),
                    min_output_spacing: Time::ZERO,
                })
                .collect())
        }
    }

    #[test]
    fn chain_propagates_jitter() {
        let mut sys = CompositionalSystem::new();
        let a = sys.add_resource(Box::new(FixedDelay::new("bus1", 100, 400)));
        let b = sys.add_resource(Box::new(FixedDelay::new("gw", 50, 150)));
        let c = sys.add_resource(Box::new(FixedDelay::new("bus2", 100, 200)));
        sys.set_source(NodeRef::new(a, 0), EventModel::periodic(Time::from_ms(10)))
            .expect("valid");
        sys.connect(NodeRef::new(a, 0), NodeRef::new(b, 0))
            .expect("valid");
        sys.connect(NodeRef::new(b, 0), NodeRef::new(c, 0))
            .expect("valid");
        let result = sys.analyze().expect("converges");
        // bus1 adds 300 us jitter, gw adds 100 more.
        assert_eq!(
            result.activation(NodeRef::new(b, 0)).jitter(),
            Time::from_us(300)
        );
        assert_eq!(
            result.activation(NodeRef::new(c, 0)).jitter(),
            Time::from_us(400)
        );
        // Output of the last hop adds its own 100 us.
        assert_eq!(
            result.output(NodeRef::new(c, 0)).jitter(),
            Time::from_us(500)
        );
        assert!(result.iterations() <= 4);
        // Periods are preserved end to end.
        assert_eq!(
            result.activation(NodeRef::new(c, 0)).period(),
            Time::from_ms(10)
        );
    }

    #[test]
    fn path_latency_sums_connected_hops() {
        let mut sys = CompositionalSystem::new();
        let a = sys.add_resource(Box::new(FixedDelay::new("bus1", 100, 400)));
        let b = sys.add_resource(Box::new(FixedDelay::new("gw", 50, 150)));
        sys.set_source(NodeRef::new(a, 0), EventModel::periodic(Time::from_ms(10)))
            .expect("valid");
        sys.connect(NodeRef::new(a, 0), NodeRef::new(b, 0))
            .expect("valid");
        let result = sys.analyze().expect("converges");
        let path = [NodeRef::new(a, 0), NodeRef::new(b, 0)];
        let latency = sys.path_latency(&result, &path).expect("connected");
        assert_eq!(latency.best(), Time::from_us(150));
        assert_eq!(latency.worst(), Time::from_us(550));
        // Disconnected or empty paths are rejected.
        assert!(sys.path_latency(&result, &[]).is_err());
        assert!(sys
            .path_latency(&result, &[NodeRef::new(b, 0), NodeRef::new(a, 0)])
            .is_err());
        // sum_latency alone does not verify connectivity.
        assert_eq!(
            result.sum_latency(&[NodeRef::new(b, 0), NodeRef::new(a, 0)]),
            latency
        );
    }

    #[test]
    fn converged_cycle_with_constant_delays() {
        // a -> b and b's output drives a second slotless path: build a
        // 2-resource cycle a0 -> b0 -> (back to) a? A node cannot have
        // two activations, so model the cycle with an external source on
        // `a` and edge b<-a only; constant-delay resources converge in
        // one extra iteration regardless.
        let mut sys = CompositionalSystem::new();
        let a = sys.add_resource(Box::new(FixedDelay::new("a", 10, 20)));
        let b = sys.add_resource(Box::new(FixedDelay::new("b", 10, 20)));
        sys.set_source(NodeRef::new(a, 0), EventModel::periodic(Time::from_ms(1)))
            .expect("valid");
        sys.connect(NodeRef::new(a, 0), NodeRef::new(b, 0))
            .expect("valid");
        let result = sys.analyze().expect("converges");
        assert_eq!(
            result.response(NodeRef::new(b, 0)).worst(),
            Time::from_us(20)
        );
    }

    #[test]
    fn diverging_cycle_reports_not_converged() {
        let mut sys = CompositionalSystem::new().with_max_iterations(16);
        let a = sys.add_resource(Box::new(Amplifier));
        let b = sys.add_resource(Box::new(Amplifier));
        // Cycle: a0 activates b0, b0 activates... a0 already has a
        // source, so emulate feedback by chaining amplifiers a->b and
        // b->a is illegal; instead verify divergence detection with a
        // self-feeding pair where b -> a is the only activation of a.
        sys.set_source(NodeRef::new(a, 0), EventModel::periodic(Time::from_ms(1)))
            .expect("valid");
        sys.connect(NodeRef::new(a, 0), NodeRef::new(b, 0))
            .expect("valid");
        // a's jitter is fixed, but b's keeps growing only if fed back;
        // without feedback this converges:
        assert!(sys.analyze().is_ok());
    }

    #[test]
    fn true_feedback_cycle_diverges() {
        // A resource whose slot-0 response grows with slot-1's input
        // jitter, while slot 1 is activated by slot 0's output: the
        // classic coupled loop whose jitter grows every iteration.
        struct SelfAmp;
        impl Resource for SelfAmp {
            fn name(&self) -> &str {
                "selfamp"
            }
            fn slot_count(&self) -> usize {
                2
            }
            fn analyze(&self, a: &[EventModel]) -> Result<Vec<SlotResponse>, AnalysisError> {
                // slot 1's response grows with slot 1's input jitter,
                // and slot 1's input comes from slot 0, whose response
                // grows with slot 1's input jitter too: a coupled loop.
                let coupling = a[1].jitter() + Time::from_us(10);
                Ok(vec![
                    SlotResponse {
                        bounds: ResponseBounds::new(Time::ZERO, coupling),
                        min_output_spacing: Time::ZERO,
                    },
                    SlotResponse {
                        bounds: ResponseBounds::new(Time::ZERO, coupling),
                        min_output_spacing: Time::ZERO,
                    },
                ])
            }
        }
        let mut sys2 = CompositionalSystem::new().with_max_iterations(8);
        let r2 = sys2.add_resource(Box::new(SelfAmp));
        sys2.set_source(NodeRef::new(r2, 0), EventModel::periodic(Time::from_ms(1)))
            .expect("valid");
        sys2.connect(NodeRef::new(r2, 0), NodeRef::new(r2, 1))
            .expect("valid");
        match sys2.analyze() {
            Err(AnalysisError::NotConverged { iterations }) => assert_eq!(iterations, 8),
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_wall_budget_reports_not_converged() {
        let mut sys = CompositionalSystem::new()
            .with_max_iterations(1_000_000)
            .with_wall_budget(std::time::Duration::ZERO);
        let a = sys.add_resource(Box::new(FixedDelay::new("a", 1, 2)));
        sys.set_source(NodeRef::new(a, 0), EventModel::periodic(Time::from_ms(1)))
            .expect("valid");
        match sys.analyze() {
            Err(AnalysisError::NotConverged { iterations }) => assert_eq!(iterations, 0),
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn missing_activation_is_reported() {
        let mut sys = CompositionalSystem::new();
        let _ = sys.add_resource(Box::new(FixedDelay::new("a", 1, 2)));
        match sys.analyze() {
            Err(AnalysisError::InvalidModel(msg)) => assert!(msg.contains("no activation")),
            other => panic!("expected InvalidModel, got {other:?}"),
        }
    }

    #[test]
    fn double_activation_rejected() {
        let mut sys = CompositionalSystem::new();
        let a = sys.add_resource(Box::new(FixedDelay::new("a", 1, 2)));
        let b = sys.add_resource(Box::new(FixedDelay::new("b", 1, 2)));
        sys.set_source(NodeRef::new(a, 0), EventModel::periodic(Time::from_ms(1)))
            .expect("valid");
        sys.set_source(NodeRef::new(b, 0), EventModel::periodic(Time::from_ms(1)))
            .expect("valid");
        assert!(sys.connect(NodeRef::new(a, 0), NodeRef::new(b, 0)).is_err());
        // And a source on an edge-activated node:
        let mut sys2 = CompositionalSystem::new();
        let a2 = sys2.add_resource(Box::new(FixedDelay::new("a", 1, 2)));
        let b2 = sys2.add_resource(Box::new(FixedDelay::new("b", 1, 2)));
        sys2.set_source(NodeRef::new(a2, 0), EventModel::periodic(Time::from_ms(1)))
            .expect("valid");
        sys2.connect(NodeRef::new(a2, 0), NodeRef::new(b2, 0))
            .expect("valid");
        assert!(sys2
            .set_source(NodeRef::new(b2, 0), EventModel::periodic(Time::from_ms(1)))
            .is_err());
    }

    #[test]
    fn out_of_range_nodes_rejected() {
        let mut sys = CompositionalSystem::new();
        let a = sys.add_resource(Box::new(FixedDelay::new("a", 1, 2)));
        assert!(sys
            .set_source(NodeRef::new(a, 5), EventModel::periodic(Time::from_ms(1)))
            .is_err());
        assert!(sys
            .set_source(NodeRef::new(7, 0), EventModel::periodic(Time::from_ms(1)))
            .is_err());
        assert!(sys.connect(NodeRef::new(a, 0), NodeRef::new(a, 0)).is_err());
    }

    #[test]
    fn cycle_without_source_detected() {
        struct Two;
        impl Resource for Two {
            fn name(&self) -> &str {
                "two"
            }
            fn slot_count(&self) -> usize {
                2
            }
            fn analyze(&self, a: &[EventModel]) -> Result<Vec<SlotResponse>, AnalysisError> {
                Ok(a.iter()
                    .map(|_| SlotResponse {
                        bounds: ResponseBounds::new(Time::ZERO, Time::ZERO),
                        min_output_spacing: Time::ZERO,
                    })
                    .collect())
            }
        }
        let mut sys = CompositionalSystem::new();
        let r = sys.add_resource(Box::new(Two));
        sys.connect(NodeRef::new(r, 0), NodeRef::new(r, 1))
            .expect("valid");
        sys.connect(NodeRef::new(r, 1), NodeRef::new(r, 0))
            .expect("valid");
        match sys.analyze() {
            Err(AnalysisError::InvalidModel(msg)) => {
                assert!(msg.contains("cycle"), "got: {msg}")
            }
            other => panic!("expected InvalidModel, got {other:?}"),
        }
    }
}
