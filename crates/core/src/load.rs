//! Simple bus-load (utilization) analysis — Section 3.1 / Figure 1 of
//! the paper.
//!
//! For each message, multiply its frequency (`1/period`) by its length
//! including protocol overhead, sum over all messages, and divide by the
//! bandwidth. The paper stresses that this popular model says *nothing*
//! about deadlines or buffer overflows; it is nevertheless the baseline
//! every other analysis in this workspace is compared against.

use crate::time::Time;

/// One traffic contributor: `bits` of payload-plus-overhead every
/// `period`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSource {
    /// Frame length in bits, including all protocol overhead.
    pub bits: u64,
    /// Message period (or minimum inter-arrival time).
    pub period: Time,
}

impl TrafficSource {
    /// Creates a traffic source.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(bits: u64, period: Time) -> Self {
        assert!(!period.is_zero(), "traffic source period must be positive");
        TrafficSource { bits, period }
    }

    /// Average bandwidth demand in bits per second.
    pub fn bits_per_second(&self) -> f64 {
        self.bits as f64 / self.period.as_s_f64()
    }
}

/// The result of a load analysis over a set of traffic sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Total demanded bandwidth in bits per second.
    pub demand_bps: f64,
    /// Bus bandwidth in bits per second.
    pub capacity_bps: f64,
}

impl LoadReport {
    /// Relative load (utilization) as a fraction; `0.36` means 36 %.
    pub fn utilization(&self) -> f64 {
        self.demand_bps / self.capacity_bps
    }

    /// Relative load in percent, the unit used by the paper.
    pub fn utilization_percent(&self) -> f64 {
        self.utilization() * 100.0
    }

    /// `true` if demand exceeds capacity — the only failure the load
    /// model can detect at all.
    pub fn is_overloaded(&self) -> bool {
        self.demand_bps > self.capacity_bps
    }

    /// `true` if the load exceeds the given OEM limit (the paper notes
    /// limits vary: "some say 40 %, others say 60 %").
    pub fn exceeds_limit(&self, limit_fraction: f64) -> bool {
        self.utilization() > limit_fraction
    }
}

/// Computes the relative load of `sources` on a bus of `bit_rate`
/// bits per second.
///
/// # Panics
///
/// Panics if `bit_rate` is zero.
///
/// # Examples
///
/// Figure 1 of the paper: four ECUs producing 180 kbit/s total on a
/// 500 kbit/s CAN bus is a 36 % load.
///
/// ```
/// use carta_core::{load::{bus_load, TrafficSource}, time::Time};
///
/// // Express 100/50/20/10 kbit/s as one frame of 1000 bits every
/// // 10/20/50/100 ms respectively.
/// let sources = [
///     TrafficSource::new(1000, Time::from_ms(10)),
///     TrafficSource::new(1000, Time::from_ms(20)),
///     TrafficSource::new(1000, Time::from_ms(50)),
///     TrafficSource::new(1000, Time::from_ms(100)),
/// ];
/// let report = bus_load(sources, 500_000);
/// assert!((report.utilization_percent() - 36.0).abs() < 1e-9);
/// ```
pub fn bus_load<I>(sources: I, bit_rate: u64) -> LoadReport
where
    I: IntoIterator<Item = TrafficSource>,
{
    assert!(bit_rate > 0, "bit rate must be positive");
    let demand_bps = sources.into_iter().map(|s| s.bits_per_second()).sum();
    LoadReport {
        demand_bps,
        capacity_bps: bit_rate as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_example_is_36_percent() {
        let sources = [
            TrafficSource::new(1000, Time::from_ms(10)), // 100 kbit/s
            TrafficSource::new(1000, Time::from_ms(20)), // 50 kbit/s
            TrafficSource::new(1000, Time::from_ms(50)), // 20 kbit/s
            TrafficSource::new(1000, Time::from_ms(100)), // 10 kbit/s
        ];
        let report = bus_load(sources, 500_000);
        assert!((report.demand_bps - 180_000.0).abs() < 1e-6);
        assert!((report.utilization_percent() - 36.0).abs() < 1e-9);
        assert!(!report.is_overloaded());
        assert!(!report.exceeds_limit(0.40));
        assert!(!report.exceeds_limit(0.60));
    }

    #[test]
    fn overload_detection() {
        let sources = [TrafficSource::new(600_000, Time::from_s(1))];
        let report = bus_load(sources, 500_000);
        assert!(report.is_overloaded());
        assert!(report.exceeds_limit(0.40));
        assert!(report.utilization() > 1.0);
    }

    #[test]
    fn empty_source_set_is_idle() {
        let report = bus_load(std::iter::empty(), 500_000);
        assert_eq!(report.demand_bps, 0.0);
        assert_eq!(report.utilization(), 0.0);
        assert!(!report.is_overloaded());
    }

    #[test]
    fn limits_vary_between_oems() {
        // 50 % load: fine for the 60 % OEM, critical for the 40 % OEM —
        // exactly the ambiguity the paper calls out.
        let sources = [TrafficSource::new(250_000, Time::from_s(1))];
        let report = bus_load(sources, 500_000);
        assert!(report.exceeds_limit(0.40));
        assert!(!report.exceeds_limit(0.60));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = TrafficSource::new(100, Time::ZERO);
    }
}
