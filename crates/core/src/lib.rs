//! # carta-core
//!
//! Foundations of the `carta` compositional real-time analysis
//! workspace — a from-scratch reproduction of the SymTA/S technology
//! surveyed in *"How OEMs and Suppliers can face the Network Integration
//! Challenges"* (Richter, Jersak, Ernst, 2006).
//!
//! This crate provides:
//!
//! * [`time`] — the integer-nanosecond [`time::Time`] value every
//!   analysis computes on,
//! * [`event_model`] — standard `(period, jitter, dmin)` event models
//!   with their arrival curves `η⁺/η⁻` and distance functions `δ⁻/δ⁺`,
//! * [`load`] — the simple bus-load model of Section 3.1 (Figure 1),
//!   kept as the baseline the paper argues is *not enough*,
//! * [`analysis`] — response-time bounds and analysis error types,
//! * [`cancel`] — cooperative cancellation tokens (deadline/drain)
//!   polled by the solve loops,
//! * [`comp`] — the compositional fixpoint engine that couples local
//!   analyses (CAN buses, ECUs) by propagating event models.
//!
//! Protocol-specific local analyses live in the sibling crates
//! `carta-can` and `carta-ecu`; exploration, optimization and
//! supply-chain contracts build on top.
//!
//! ## Example
//!
//! ```
//! use carta_core::{event_model::EventModel, time::Time};
//!
//! // A 20 ms message with 25 % queuing jitter:
//! let em = EventModel::periodic_with_jitter(Time::from_ms(20), Time::from_ms(5));
//! // Worst-case number of queuings within 100 ms:
//! assert_eq!(em.eta_plus(Time::from_ms(100)), 6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod analysis;
pub mod cancel;
pub mod comp;
pub mod event_model;
pub mod load;
pub mod time;

pub use analysis::{AnalysisError, DivergenceCause, MessageDiagnostic, ResponseBounds};
pub use cancel::CancelToken;
pub use event_model::{ActivationKind, EventModel};
pub use time::Time;
