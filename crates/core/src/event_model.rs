//! Standard event models.
//!
//! SymTA/S-style compositional analysis abstracts every activation
//! stream (task activations, CAN message queuings) into a **standard
//! event model** described by three parameters
//! (Richter's *period / jitter / minimum-distance* model, refs. \[11,12\]
//! of the paper):
//!
//! * `period`  `P` — the ideal distance between events (for sporadic
//!   streams: the minimum inter-arrival time),
//! * `jitter`  `J` — the maximum deviation of any event from its ideal
//!   periodic position,
//! * `dmin`    `d` — a lower bound on the distance of *consecutive*
//!   events, which caps transient burst rates when `J ≥ P`.
//!
//! From the three parameters the model derives the arrival curves used
//! by every analysis in this workspace:
//!
//! * `η⁺(Δt)` ([`EventModel::eta_plus`]) — the maximum number of events
//!   in any half-open time window of length `Δt`,
//! * `η⁻(Δt)` ([`EventModel::eta_minus`]) — the minimum number,
//! * `δ⁻(n)`  ([`EventModel::delta_min`]) — the minimum distance between
//!   the first and the last of any `n` consecutive events,
//! * `δ⁺(n)`  ([`EventModel::delta_max`]) — the maximum such distance
//!   (unbounded for sporadic streams).
//!
//! The two views are kept consistent by construction:
//! `η⁺(Δt) = max { n | δ⁻(n) < Δt }`.

use crate::time::Time;
use std::fmt;

/// Whether a stream recurs strictly or only has a minimum inter-arrival
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ActivationKind {
    /// Events keep arriving forever with bounded deviation from a
    /// periodic reference; `δ⁺` is defined.
    #[default]
    Periodic,
    /// `period` is only a minimum inter-arrival time; arbitrarily long
    /// gaps are possible, so `δ⁺` is unbounded.
    Sporadic,
}

/// A standard event model `(P, J, d)`.
///
/// # Examples
///
/// ```
/// use carta_core::{event_model::EventModel, time::Time};
///
/// // A 10 ms message with 2 ms queuing jitter.
/// let em = EventModel::periodic_with_jitter(Time::from_ms(10), Time::from_ms(2));
/// // At most 2 events can fall into one 11 ms window...
/// assert_eq!(em.eta_plus(Time::from_ms(11)), 2);
/// // ...and at least 8 ms separate two consecutive events.
/// assert_eq!(em.delta_min(2), Time::from_ms(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventModel {
    kind: ActivationKind,
    period: Time,
    jitter: Time,
    dmin: Time,
}

impl EventModel {
    /// Strictly periodic stream without jitter.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn periodic(period: Time) -> Self {
        Self::new(ActivationKind::Periodic, period, Time::ZERO, Time::ZERO)
    }

    /// Periodic stream whose events may deviate up to `jitter` from
    /// their ideal positions.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn periodic_with_jitter(period: Time, jitter: Time) -> Self {
        Self::new(ActivationKind::Periodic, period, jitter, Time::ZERO)
    }

    /// Sporadic stream with the given minimum inter-arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `min_interarrival` is zero.
    pub fn sporadic(min_interarrival: Time) -> Self {
        Self::new(
            ActivationKind::Sporadic,
            min_interarrival,
            Time::ZERO,
            Time::ZERO,
        )
    }

    /// Full constructor.
    ///
    /// `dmin` is capped at `period`: a minimum distance above the
    /// (long-run) period would contradict the period itself, and the
    /// capped model describes the same event streams.
    ///
    /// A zero `period` is accepted as a *degenerate* model (unbounded
    /// arrivals in any window: `η⁺ = ∞`). It is representable so that
    /// hostile inputs can be diagnosed — every analysis entry point
    /// rejects it during validation instead of panicking here.
    pub fn new(kind: ActivationKind, period: Time, jitter: Time, dmin: Time) -> Self {
        EventModel {
            kind,
            period,
            jitter,
            dmin: dmin.min(period),
        }
    }

    /// A periodic burst: `burst_size` events every `outer_period`, with
    /// at least `intra_distance` between events inside a burst, mapped
    /// onto the `(P, J, d)` parameters as in Richter's thesis:
    /// `P = T/b`, `J = (b−1)·(P − d)`, `d = intra_distance`.
    ///
    /// # Panics
    ///
    /// Panics if `burst_size` is zero or `outer_period` is zero.
    pub fn burst(outer_period: Time, burst_size: u64, intra_distance: Time) -> Self {
        assert!(burst_size > 0, "burst size must be positive");
        assert!(
            !outer_period.is_zero(),
            "event model period must be positive"
        );
        let period = Time::from_ns((outer_period.as_ns()).div_ceil(burst_size));
        let jitter = period.saturating_sub(intra_distance) * (burst_size - 1);
        EventModel {
            kind: ActivationKind::Periodic,
            period,
            jitter,
            dmin: intra_distance,
        }
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }

    /// The (minimum inter-arrival) period `P`.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The jitter `J`.
    pub fn jitter(&self) -> Time {
        self.jitter
    }

    /// The minimum distance `d` between consecutive events
    /// (zero = unconstrained).
    pub fn dmin(&self) -> Time {
        self.dmin
    }

    /// Returns a copy with the jitter replaced.
    pub fn with_jitter(self, jitter: Time) -> Self {
        EventModel { jitter, ..self }
    }

    /// Returns a copy with the minimum distance replaced.
    pub fn with_dmin(self, dmin: Time) -> Self {
        EventModel { dmin, ..self }
    }

    /// Jitter expressed as a fraction of the period (infinite for the
    /// degenerate zero-period model).
    pub fn jitter_ratio(&self) -> f64 {
        if self.period.is_zero() {
            return f64::INFINITY;
        }
        self.jitter.as_ns() as f64 / self.period.as_ns() as f64
    }

    /// `η⁺(Δt)`: the maximum number of events in any half-open window
    /// of length `window`.
    ///
    /// ```
    /// use carta_core::{event_model::EventModel, time::Time};
    /// let em = EventModel::periodic(Time::from_ms(10));
    /// assert_eq!(em.eta_plus(Time::ZERO), 0);
    /// assert_eq!(em.eta_plus(Time::from_ms(10)), 1);
    /// assert_eq!(em.eta_plus(Time::from_ms(10) + Time::from_ns(1)), 2);
    /// ```
    pub fn eta_plus(&self, window: Time) -> u64 {
        if window.is_zero() {
            return 0;
        }
        if self.period.is_zero() {
            // Degenerate zero-period model: unbounded arrivals (the
            // dmin cap below still applies when a distance is given).
            return if self.dmin.is_zero() {
                u64::MAX
            } else {
                window.div_ceil(self.dmin)
            };
        }
        let by_period = window.saturating_add(self.jitter).div_ceil(self.period);
        if self.dmin.is_zero() {
            by_period
        } else {
            by_period.min(window.div_ceil(self.dmin))
        }
    }

    /// `η⁻(Δt)`: the minimum number of events in any half-open window
    /// of length `window`. Zero for sporadic streams is never returned
    /// incorrectly — sporadic streams always yield 0.
    pub fn eta_minus(&self, window: Time) -> u64 {
        if self.kind == ActivationKind::Sporadic {
            return 0;
        }
        if self.period.is_zero() {
            return u64::MAX; // degenerate: unbounded arrivals
        }
        window.saturating_sub(self.jitter).div_floor(self.period)
    }

    /// `δ⁻(n)`: the minimum time between the first and last of `n`
    /// consecutive events. Zero for `n ≤ 1`.
    pub fn delta_min(&self, n: u64) -> Time {
        if n <= 1 {
            return Time::ZERO;
        }
        let spread = n - 1;
        let by_period = self
            .period
            .saturating_mul(spread)
            .saturating_sub(self.jitter);
        let by_dmin = self.dmin.saturating_mul(spread);
        by_period.max(by_dmin)
    }

    /// `δ⁺(n)`: the maximum time between the first and last of `n`
    /// consecutive events, or `None` if unbounded (sporadic streams,
    /// or `n ≤ 1` trivially `Some(0)`).
    pub fn delta_max(&self, n: u64) -> Option<Time> {
        if n <= 1 {
            return Some(Time::ZERO);
        }
        match self.kind {
            ActivationKind::Sporadic => None,
            ActivationKind::Periodic => Some(
                self.period
                    .saturating_mul(n - 1)
                    .saturating_add(self.jitter),
            ),
        }
    }

    /// The event model seen *downstream* of a resource that delays
    /// events by a response time varying over `[r_min, r_max]` and emits
    /// consecutive outputs at least `min_output_spacing` apart
    /// (typically the minimum transmission/execution time).
    ///
    /// This is the SymTA/S propagation rule
    /// `J_out = J_in + (R_max − R_min)`.
    ///
    /// # Panics
    ///
    /// Panics if `r_max < r_min`.
    pub fn propagate(&self, r_min: Time, r_max: Time, min_output_spacing: Time) -> Self {
        assert!(r_max >= r_min, "response time bounds are inverted");
        EventModel {
            kind: self.kind,
            period: self.period,
            jitter: self.jitter + (r_max - r_min),
            dmin: min_output_spacing,
        }
    }

    /// `true` if a stream guaranteed by `guarantee` always satisfies the
    /// bound described by `self` (closed-form containment check used for
    /// supply-chain contracts): same period, no more jitter, no denser
    /// bursts.
    pub fn is_satisfied_by(&self, guarantee: &EventModel) -> bool {
        guarantee.period >= self.period
            && guarantee.jitter <= self.jitter
            && guarantee.dmin >= self.dmin
    }

    /// Exact containment check over all event counts reachable within
    /// `horizon`: `η⁺_G(Δt) ≤ η⁺_self(Δt)` for all `Δt` is equivalent to
    /// `δ⁻_G(n) ≥ δ⁻_self(n)` for all `n`, which this method verifies
    /// for every `n` up to the count fitting into `horizon`. Used to
    /// cross-validate [`EventModel::is_satisfied_by`] and for models
    /// with differing periods.
    pub fn is_satisfied_by_pointwise(&self, guarantee: &EventModel, horizon: Time) -> bool {
        let n_max = guarantee.eta_plus(horizon).max(self.eta_plus(horizon)) + 1;
        (2..=n_max).all(|n| guarantee.delta_min(n) >= self.delta_min(n))
    }

    /// Fits a `(P, J, d)` model around an observed activation trace
    /// (sorted event instants). Returns `None` for traces with fewer
    /// than two events. The fit uses the mean inter-arrival as period
    /// and derives the tightest jitter/dmin that still bound the trace.
    pub fn from_trace(trace: &[Time]) -> Option<Self> {
        if trace.len() < 2 {
            return None;
        }
        debug_assert!(
            trace.windows(2).all(|w| w[0] <= w[1]),
            "trace must be sorted"
        );
        let n = (trace.len() - 1) as u64;
        let span = trace[trace.len() - 1] - trace[0];
        let period = Time::from_ns((span.as_ns() / n).max(1));
        let t0 = trace[0];
        let mut max_dev_late = Time::ZERO;
        let mut max_dev_early = Time::ZERO;
        let mut dmin = Time::MAX;
        for (i, &t) in trace.iter().enumerate() {
            let ideal = t0 + period * (i as u64);
            if t >= ideal {
                max_dev_late = max_dev_late.max(t - ideal);
            } else {
                max_dev_early = max_dev_early.max(ideal - t);
            }
            if i > 0 {
                dmin = dmin.min(t - trace[i - 1]);
            }
        }
        Some(EventModel {
            kind: ActivationKind::Periodic,
            period,
            jitter: max_dev_late + max_dev_early,
            dmin,
        })
    }
}

/// Where a measured stream violates an event-model bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamViolation {
    /// Index of the first event of the violating window.
    pub at: usize,
    /// Number of events in the violating window.
    pub count: u64,
    /// Observed span of those events.
    pub span: Time,
    /// Minimum span the model requires for that many events.
    pub required: Time,
}

impl fmt::Display for StreamViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events within {} starting at index {} (model requires at least {})",
            self.count, self.span, self.at, self.required
        )
    }
}

impl EventModel {
    /// Checks that a measured, sorted event trace stays within this
    /// model's arrival bound: every window of `n` consecutive events
    /// must span at least `δ⁻(n)`. This is the conformance test a party
    /// runs against a datasheet it received — "what is assumed and
    /// required, must later be guaranteed" (paper, Sec. 5.1).
    ///
    /// Windows up to `max_window` events are checked (2 ≲ n ≲ trace
    /// length); pass `usize::MAX` for a full check.
    ///
    /// # Errors
    ///
    /// Returns the first [`StreamViolation`] found.
    pub fn bounds_stream(
        &self,
        instants: &[Time],
        max_window: usize,
    ) -> Result<(), StreamViolation> {
        debug_assert!(
            instants.windows(2).all(|w| w[0] <= w[1]),
            "trace must be sorted"
        );
        let n = instants.len();
        for k in 2..=max_window.min(n) {
            for (at, w) in instants.windows(k).enumerate() {
                let span = w[k - 1] - w[0];
                let required = self.delta_min(k as u64);
                if span < required {
                    return Err(StreamViolation {
                        at,
                        count: k as u64,
                        span,
                        required,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for EventModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ActivationKind::Periodic => "P",
            ActivationKind::Sporadic => "S",
        };
        write!(
            f,
            "{kind}(P={}, J={}, d={})",
            self.period, self.jitter, self.dmin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ms(v: u64) -> Time {
        Time::from_ms(v)
    }

    #[test]
    fn periodic_eta_plus_matches_textbook() {
        let em = EventModel::periodic(ms(10));
        assert_eq!(em.eta_plus(Time::ZERO), 0);
        assert_eq!(em.eta_plus(Time::from_ns(1)), 1);
        assert_eq!(em.eta_plus(ms(10)), 1);
        assert_eq!(em.eta_plus(ms(10) + Time::from_ns(1)), 2);
        assert_eq!(em.eta_plus(ms(95)), 10);
    }

    #[test]
    fn jitter_admits_an_extra_event() {
        let em = EventModel::periodic_with_jitter(ms(10), ms(3));
        // Window of 8 ms can catch two events (one 3 ms late, next 3 ms early... bounded by J total).
        assert_eq!(em.eta_plus(ms(8)), 2);
        assert_eq!(em.eta_plus(ms(7)), 1);
        assert_eq!(em.delta_min(2), ms(7));
    }

    #[test]
    fn dmin_caps_burst_rate() {
        // J = 3 periods: up to 4 events can pile up, but dmin spaces them.
        let em = EventModel::new(ActivationKind::Periodic, ms(10), ms(30), ms(1));
        assert_eq!(em.eta_plus(Time::from_ns(1)), 1);
        assert_eq!(em.eta_plus(ms(1)), 1);
        assert_eq!(em.eta_plus(ms(1) + Time::from_ns(1)), 2);
        assert_eq!(em.eta_plus(ms(3) + Time::from_ns(1)), 4);
        // Beyond the burst, the periodic bound takes over.
        assert_eq!(em.eta_plus(ms(10)), 4);
    }

    #[test]
    fn eta_minus_for_periodic_and_sporadic() {
        let p = EventModel::periodic_with_jitter(ms(10), ms(2));
        assert_eq!(p.eta_minus(ms(10)), 0); // jitter may push the event out
        assert_eq!(p.eta_minus(ms(12)), 1);
        assert_eq!(p.eta_minus(ms(32)), 3);
        let s = EventModel::sporadic(ms(10));
        assert_eq!(s.eta_minus(ms(1000)), 0);
    }

    #[test]
    fn delta_max_unbounded_for_sporadic() {
        let s = EventModel::sporadic(ms(10));
        assert_eq!(s.delta_max(1), Some(Time::ZERO));
        assert_eq!(s.delta_max(2), None);
        let p = EventModel::periodic_with_jitter(ms(10), ms(2));
        assert_eq!(p.delta_max(3), Some(ms(22)));
    }

    #[test]
    fn propagation_grows_jitter() {
        let em = EventModel::periodic_with_jitter(ms(10), ms(1));
        let out = em.propagate(ms(2), ms(5), Time::from_us(100));
        assert_eq!(out.period(), ms(10));
        assert_eq!(out.jitter(), ms(4));
        assert_eq!(out.dmin(), Time::from_us(100));
    }

    #[test]
    fn burst_mapping() {
        // 5 events every 100 ms, 2 ms apart inside the burst.
        let em = EventModel::burst(ms(100), 5, ms(2));
        assert_eq!(em.period(), ms(20));
        assert_eq!(em.jitter(), ms(72)); // (5-1)*(20-2)
        assert_eq!(em.dmin(), ms(2));
        // All 5 burst events fit in a window slightly above 8 ms.
        assert_eq!(em.eta_plus(ms(8) + Time::from_ns(1)), 5);
    }

    #[test]
    fn contract_containment_closed_form() {
        let required = EventModel::periodic_with_jitter(ms(10), ms(3));
        let good = EventModel::periodic_with_jitter(ms(10), ms(2));
        let bad = EventModel::periodic_with_jitter(ms(10), ms(4));
        assert!(required.is_satisfied_by(&good));
        assert!(!required.is_satisfied_by(&bad));
        assert!(required.is_satisfied_by_pointwise(&good, ms(1000)));
        assert!(!required.is_satisfied_by_pointwise(&bad, ms(1000)));
    }

    #[test]
    fn trace_fitting_bounds_the_trace() {
        let trace: Vec<Time> = [0u64, 10, 19, 31, 40].iter().map(|&v| ms(v)).collect();
        let em = EventModel::from_trace(&trace).expect("trace long enough");
        assert_eq!(em.period(), ms(10));
        // Every pair spacing respects the fitted bounds.
        for w in trace.windows(2) {
            assert!(w[1] - w[0] >= em.delta_min(2));
        }
        assert!(EventModel::from_trace(&[ms(1)]).is_none());
        assert!(EventModel::from_trace(&[]).is_none());
    }

    #[test]
    fn stream_conformance() {
        let bound = EventModel::periodic_with_jitter(ms(10), ms(2));
        // Conforming trace: 10 ms nominal spacing, ±1 ms wiggle.
        let good: Vec<Time> = [0u64, 9, 21, 30, 41].iter().map(|&v| ms(v)).collect();
        assert!(bound.bounds_stream(&good, usize::MAX).is_ok());
        // Two events 5 ms apart violate δ⁻(2) = 8 ms.
        let bad: Vec<Time> = [0u64, 5, 20].iter().map(|&v| ms(v)).collect();
        let v = bound
            .bounds_stream(&bad, usize::MAX)
            .expect_err("violation");
        assert_eq!(v.at, 0);
        assert_eq!(v.count, 2);
        assert_eq!(v.span, ms(5));
        assert_eq!(v.required, ms(8));
        assert!(v.to_string().contains("2 events"));
        // A burst hidden from pairwise checks is caught by wider windows:
        // spacing 8,8 is pairwise fine but 3 events in 16 ms < δ⁻(3)=18.
        let sneaky: Vec<Time> = [0u64, 8, 16].iter().map(|&v| ms(v)).collect();
        assert!(bound.bounds_stream(&sneaky, 2).is_ok());
        let v = bound.bounds_stream(&sneaky, 3).expect_err("violation");
        assert_eq!(v.count, 3);
        // Empty and single-event traces trivially conform.
        assert!(bound.bounds_stream(&[], usize::MAX).is_ok());
        assert!(bound.bounds_stream(&[ms(5)], usize::MAX).is_ok());
    }

    #[test]
    fn display_is_informative() {
        let em = EventModel::periodic_with_jitter(ms(10), ms(2));
        assert_eq!(em.to_string(), "P(P=10ms, J=2ms, d=0)");
    }

    proptest! {
        #[test]
        fn eta_delta_consistency(
            period in 1u64..10_000,
            jitter in 0u64..50_000,
            dmin in 0u64..1_000,
            n in 2u64..50,
        ) {
            let em = EventModel::new(
                ActivationKind::Periodic,
                Time::from_ns(period),
                Time::from_ns(jitter),
                Time::from_ns(dmin),
            );
            let d = em.delta_min(n);
            // n events never fit in a window of length delta_min(n)...
            prop_assert!(em.eta_plus(d) < n || d.is_zero());
            // ...but do fit in a window 1 ns longer.
            prop_assert!(em.eta_plus(d + Time::from_ns(1)) >= n);
        }

        #[test]
        fn eta_plus_monotone(
            period in 1u64..10_000,
            jitter in 0u64..50_000,
            dmin in 0u64..1_000,
            a in 0u64..100_000,
            b in 0u64..100_000,
        ) {
            let em = EventModel::new(
                ActivationKind::Periodic,
                Time::from_ns(period),
                Time::from_ns(jitter),
                Time::from_ns(dmin),
            );
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(em.eta_plus(Time::from_ns(lo)) <= em.eta_plus(Time::from_ns(hi)));
        }

        #[test]
        fn eta_minus_never_exceeds_eta_plus(
            period in 1u64..10_000,
            jitter in 0u64..50_000,
            w in 0u64..200_000,
        ) {
            let em = EventModel::periodic_with_jitter(
                Time::from_ns(period),
                Time::from_ns(jitter),
            );
            let w = Time::from_ns(w);
            prop_assert!(em.eta_minus(w) <= em.eta_plus(w));
        }

        #[test]
        fn delta_min_superadditive_spacing(
            period in 1u64..10_000,
            jitter in 0u64..50_000,
            dmin in 0u64..1_000,
            n in 2u64..40,
        ) {
            let em = EventModel::new(
                ActivationKind::Periodic,
                Time::from_ns(period),
                Time::from_ns(jitter),
                Time::from_ns(dmin),
            );
            // delta_min is non-decreasing in n.
            prop_assert!(em.delta_min(n) <= em.delta_min(n + 1));
            // delta_max bounds delta_min.
            if let Some(dmax) = em.delta_max(n) {
                prop_assert!(em.delta_min(n) <= dmax);
            }
        }

        #[test]
        fn propagation_preserves_period_and_kind(
            period in 1u64..10_000,
            jitter in 0u64..10_000,
            rmin in 0u64..5_000,
            growth in 0u64..5_000,
        ) {
            let em = EventModel::periodic_with_jitter(
                Time::from_ns(period),
                Time::from_ns(jitter),
            );
            let out = em.propagate(
                Time::from_ns(rmin),
                Time::from_ns(rmin + growth),
                Time::ZERO,
            );
            prop_assert_eq!(out.period(), em.period());
            prop_assert_eq!(out.jitter(), em.jitter() + Time::from_ns(growth));
            // Larger jitter can only admit more events in any window.
            for w in [0u64, period / 2, period, 3 * period] {
                prop_assert!(out.eta_plus(Time::from_ns(w)) >= em.eta_plus(Time::from_ns(w)));
            }
        }
    }
}
