//! ASCII Gantt rendering of bus traces — the textual equivalent of the
//! paper's Figure 2 ("Message Jitters, Burst, and Errors Result in
//! Complex Communication Patterns").

use crate::trace::{Trace, TraceKind};
use carta_core::time::Time;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct GanttConfig {
    /// Window start.
    pub from: Time,
    /// Window end.
    pub to: Time,
    /// Number of character columns.
    pub columns: usize,
}

impl Default for GanttConfig {
    fn default() -> Self {
        GanttConfig {
            from: Time::ZERO,
            to: Time::from_ms(10),
            columns: 100,
        }
    }
}

/// Renders the trace window as one text row per message.
///
/// `#` marks successful transmission, `R` retransmission, `x` an error
/// hit / error frame, `.` idle. Message rows appear in index order with
/// the supplied labels.
///
/// # Panics
///
/// Panics if `config.to <= config.from` or `columns == 0`.
pub fn render(trace: &Trace, labels: &[String], config: &GanttConfig) -> String {
    assert!(config.to > config.from, "empty render window");
    assert!(config.columns > 0, "need at least one column");
    let span = config.to - config.from;
    let col_width = Time::from_ns((span.as_ns() / config.columns as u64).max(1));
    let label_width = labels.iter().map(|l| l.len()).max().unwrap_or(4).max(4);

    let mut rows: Vec<Vec<char>> = vec![vec!['.'; config.columns]; labels.len()];
    for e in trace.window(config.from, config.to) {
        if e.message >= rows.len() {
            continue;
        }
        let mark = match e.kind {
            TraceKind::Transmission => '#',
            TraceKind::Retransmission => 'R',
            TraceKind::ErrorHit => 'x',
        };
        let s = e.start.max(config.from) - config.from;
        let t = e.end.min(config.to) - config.from;
        let c0 = s.div_floor(col_width) as usize;
        let c1 = (t.div_ceil(col_width) as usize).max(c0 + 1);
        for cell in rows[e.message][c0..c1.min(config.columns)].iter_mut() {
            *cell = mark;
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{:label_width$} |{}..{}|\n",
        "bus", config.from, config.to,
    ));
    for (label, row) in labels.iter().zip(rows) {
        out.push_str(&format!("{label:label_width$} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    #[test]
    fn renders_marks_in_order() {
        let mut trace = Trace::new();
        trace.push(TraceEvent {
            message: 0,
            start: Time::from_us(0),
            end: Time::from_us(250),
            kind: TraceKind::Transmission,
        });
        trace.push(TraceEvent {
            message: 1,
            start: Time::from_us(250),
            end: Time::from_us(300),
            kind: TraceKind::ErrorHit,
        });
        trace.push(TraceEvent {
            message: 1,
            start: Time::from_us(300),
            end: Time::from_us(550),
            kind: TraceKind::Retransmission,
        });
        let labels = vec!["alpha".to_string(), "beta".to_string()];
        let text = render(
            &trace,
            &labels,
            &GanttConfig {
                from: Time::ZERO,
                to: Time::from_ms(1),
                columns: 50,
            },
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("alpha"));
        assert!(lines[1].contains('#'));
        assert!(lines[2].contains('x'));
        assert!(lines[2].contains('R'));
        // alpha's row has no error marks.
        assert!(!lines[1].contains('x'));
    }

    #[test]
    fn events_outside_window_ignored() {
        let mut trace = Trace::new();
        trace.push(TraceEvent {
            message: 0,
            start: Time::from_ms(5),
            end: Time::from_ms(6),
            kind: TraceKind::Transmission,
        });
        let text = render(
            &trace,
            &["m".to_string()],
            &GanttConfig {
                from: Time::ZERO,
                to: Time::from_ms(1),
                columns: 10,
            },
        );
        assert!(!text.lines().nth(1).expect("row").contains('#'));
    }

    #[test]
    #[should_panic(expected = "empty render window")]
    fn empty_window_rejected() {
        let _ = render(
            &Trace::new(),
            &[],
            &GanttConfig {
                from: Time::from_ms(1),
                to: Time::from_ms(1),
                columns: 10,
            },
        );
    }
}
