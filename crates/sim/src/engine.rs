//! The discrete-event CAN bus simulator.
//!
//! The simulator replays a [`CanNetwork`] with randomized (seeded)
//! jitter phasings, configurable bit stuffing and error injection, and
//! records per-message response statistics plus a full bus trace
//! (Figure 2 of the paper shows exactly such a trace).
//!
//! It exists for two reasons:
//!
//! 1. **Validation** — simulated response times must never exceed the
//!    analytical worst case (integration-tested across random systems),
//! 2. **Illustration of the paper's core argument** — simulation covers
//!    only the phasings it happens to visit, so its observed maxima
//!    routinely *under*estimate the true worst case that the analysis
//!    finds (Sec. 2: "corner case coverage problems").

use crate::inject::ErrorInjector;
use crate::trace::{Trace, TraceEvent, TraceKind};
use carta_can::backend::NetworkBackend;
use carta_can::controller::ControllerType;
use carta_can::frame::bit_time;
use carta_can::network::CanNetwork;
use carta_core::time::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Bit-stuffing realization during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimStuffing {
    /// Every frame carries the maximum number of stuff bits.
    #[default]
    Worst,
    /// Frame lengths drawn uniformly between the minimum and maximum.
    Random,
    /// No stuff bits (optimistic).
    None,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Simulated time span.
    pub horizon: Time,
    /// RNG seed for jitter phasing and random stuffing.
    pub seed: u64,
    /// Stuffing realization.
    pub stuffing: SimStuffing,
    /// Record the bus trace (disable for long validation runs to save
    /// memory).
    pub record_trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            horizon: Time::from_s(2),
            seed: 42,
            stuffing: SimStuffing::Worst,
            record_trace: true,
        }
    }
}

/// Observed statistics for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageStats {
    /// Message name.
    pub name: String,
    /// Instances queued.
    pub queued: u64,
    /// Instances transmitted successfully.
    pub completed: u64,
    /// Instances overwritten in the send buffer before transmission —
    /// the paper's "lost" messages.
    pub overwritten: u64,
    /// Completed instances whose response exceeded the deadline.
    pub deadline_misses: u64,
    /// Smallest observed response time.
    pub min_response: Option<Time>,
    /// Largest observed response time.
    pub max_response: Option<Time>,
    /// Sum of responses (for the mean).
    sum_response: Time,
    /// Per-instance outcome sequence, in time order: `true` = delivered
    /// within the deadline, `false` = overwritten or late. Feeds the
    /// "N out of M" statistics the paper's Section 2 discusses.
    outcomes: Vec<bool>,
    /// All completed responses (for percentiles).
    responses: Vec<Time>,
}

impl MessageStats {
    fn new(name: String) -> Self {
        MessageStats {
            name,
            queued: 0,
            completed: 0,
            overwritten: 0,
            deadline_misses: 0,
            min_response: None,
            max_response: None,
            sum_response: Time::ZERO,
            outcomes: Vec::new(),
            responses: Vec::new(),
        }
    }

    fn record(&mut self, response: Time, deadline: Time) {
        self.completed += 1;
        self.sum_response += response;
        self.min_response = Some(self.min_response.map_or(response, |m| m.min(response)));
        self.max_response = Some(self.max_response.map_or(response, |m| m.max(response)));
        let ok = response <= deadline;
        if !ok {
            self.deadline_misses += 1;
        }
        self.outcomes.push(ok);
        self.responses.push(response);
    }

    fn record_loss(&mut self) {
        self.overwritten += 1;
        self.outcomes.push(false);
    }

    /// Mean observed response time.
    pub fn mean_response(&self) -> Option<Time> {
        if self.completed == 0 {
            None
        } else {
            Some(self.sum_response / self.completed)
        }
    }

    /// The per-instance outcome sequence (`true` = delivered in time).
    pub fn outcomes(&self) -> &[bool] {
        &self.outcomes
    }

    /// Every completed response time, in completion order. Feeds
    /// empirical CDFs when validating the probabilistic analysis
    /// against Monte-Carlo runs.
    pub fn responses(&self) -> &[Time] {
        &self.responses
    }

    /// The `q`-quantile of observed responses (`0.0 ≤ q ≤ 1.0`,
    /// nearest-rank); `None` before any completion.
    ///
    /// Comparing `percentile(0.99)` with `max_response` and with the
    /// analytical bound quantifies the paper's corner-case-coverage
    /// argument: the tail a test bench observes sits well below the
    /// true worst case.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<Time> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.responses.is_empty() {
            return None;
        }
        let mut sorted = self.responses.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Longest observed run of consecutive lost/late instances.
    pub fn max_consecutive_misses(&self) -> usize {
        let mut max = 0;
        let mut run = 0;
        for &ok in &self.outcomes {
            if ok {
                run = 0;
            } else {
                run += 1;
                max = max.max(run);
            }
        }
        max
    }

    /// The most misses observed in any window of `m` consecutive
    /// instances — the measured side of the industry "N out of M"
    /// guarantee the paper's Section 2 describes.
    pub fn worst_misses_in_window(&self, m: usize) -> usize {
        if m == 0 || self.outcomes.is_empty() {
            return 0;
        }
        let mut worst = 0;
        let mut current = 0;
        for (i, &ok) in self.outcomes.iter().enumerate() {
            if !ok {
                current += 1;
            }
            if i >= m && !self.outcomes[i - m] {
                current -= 1;
            }
            worst = worst.max(current);
        }
        worst
    }

    /// `true` if at most `n` of any `m` consecutive instances were lost
    /// or late.
    pub fn meets_n_out_of_m(&self, n: usize, m: usize) -> bool {
        self.worst_misses_in_window(m) <= n
    }

    /// Fraction of queued instances lost (overwritten).
    pub fn loss_fraction(&self) -> f64 {
        if self.queued == 0 {
            0.0
        } else {
            self.overwritten as f64 / self.queued as f64
        }
    }
}

/// The full simulation result.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-message statistics, in network message order.
    pub stats: Vec<MessageStats>,
    /// The recorded bus trace (empty if disabled).
    pub trace: Trace,
    /// Simulated horizon.
    pub horizon: Time,
}

impl SimReport {
    /// Looks statistics up by message name.
    pub fn by_name(&self, name: &str) -> Option<&MessageStats> {
        self.stats.iter().find(|s| s.name == name)
    }

    /// Observed bus utilization (busy time / horizon).
    pub fn observed_utilization(&self) -> f64 {
        self.trace.busy_time().as_ns() as f64 / self.horizon.as_ns() as f64
    }

    /// Total overwritten instances across all messages.
    pub fn total_overwritten(&self) -> u64 {
        self.stats.iter().map(|s| s.overwritten).sum()
    }
}

/// Runs the simulation.
///
/// # Panics
///
/// Panics if the network fails validation — run
/// [`CanNetwork::validate`] first for a graceful error.
pub fn simulate(net: &CanNetwork, injector: &dyn ErrorInjector, config: &SimConfig) -> SimReport {
    simulate_with_arrivals(net, injector, config, &[])
}

/// Like [`simulate`], but the messages named in `external` queue at the
/// given instants instead of at randomized periodic releases — the hook
/// that lets a downstream bus replay the completion stream of an
/// upstream bus (gateway co-simulation).
///
/// # Panics
///
/// Panics if the network fails validation or an override index is out
/// of range.
#[allow(clippy::expect_used)] // validity panic is documented above
pub fn simulate_with_arrivals(
    net: &CanNetwork,
    injector: &dyn ErrorInjector,
    config: &SimConfig,
    external: &[(usize, Vec<Time>)],
) -> SimReport {
    net.validate().expect("network must be valid");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let rate = net.bit_rate();
    let backend_config = net.backend();
    let backend: &dyn NetworkBackend = backend_config.backend();
    let tau = bit_time(rate);
    // Data-phase bit time; equals `tau` on classic CAN, where the data
    // phase is empty anyway.
    let tau_d = bit_time(backend.data_rate(rate));
    let error_frame = tau * backend.error_frame_bits();
    let msgs = net.messages();
    for (i, _) in external {
        assert!(*i < msgs.len(), "external arrival index {i} out of range");
    }

    // Pre-generate queue events: (instant, message index).
    let mut queue_events: Vec<(Time, usize)> = Vec::new();
    for (i, m) in msgs.iter().enumerate() {
        if let Some((_, instants)) = external.iter().find(|(j, _)| *j == i) {
            for &t in instants {
                if t < config.horizon {
                    queue_events.push((t, i));
                }
            }
            continue;
        }
        let period = m.activation.period();
        let jitter = m.activation.jitter();
        let offset = Time::from_ns(rng.gen_range(0..period.as_ns()));
        let mut k = 0u64;
        loop {
            let ideal = offset + period * k;
            if ideal >= config.horizon {
                break;
            }
            let j = if jitter.is_zero() {
                Time::ZERO
            } else {
                Time::from_ns(rng.gen_range(0..=jitter.as_ns()))
            };
            let t = ideal + j;
            if t < config.horizon {
                queue_events.push((t, i));
            }
            k += 1;
        }
    }
    queue_events.sort_unstable();

    let mut error_hits = injector.hits_until(config.horizon, &mut rng);
    error_hits.sort_unstable();
    let mut hit_idx = 0usize;

    let deadlines: Vec<Time> = msgs.iter().map(|m| m.resolved_deadline()).collect();
    let mut stats: Vec<MessageStats> = msgs
        .iter()
        .map(|m| MessageStats::new(m.name.clone()))
        .collect();
    let mut pending: Vec<Option<Time>> = vec![None; msgs.len()];
    let mut retrying: Vec<bool> = vec![false; msgs.len()];
    let mut trace = Trace::new();

    // Per-node TX-path state, faithful to the controller type: a
    // basicCAN node owns a single unrevokable register; a FIFO node a
    // bounded software queue; a fullCAN node per-message buffers.
    let node_count = net.nodes().len();
    let controllers: Vec<ControllerType> = net.nodes().iter().map(|n| n.controller).collect();
    let mut registers: Vec<Option<usize>> = vec![None; node_count];
    let mut fifos: Vec<VecDeque<usize>> = vec![VecDeque::new(); node_count];

    // Delivers one queue event into the node's TX path. `in_flight`
    // protects the frame currently on the wire: new data for it parks
    // in `relaunch` instead of overwriting (the wire transmission is
    // not aborted by a buffer update).
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        t: Time,
        i: usize,
        msgs: &[carta_can::message::CanMessage],
        controllers: &[ControllerType],
        pending: &mut [Option<Time>],
        retrying: &mut [bool],
        fifos: &mut [VecDeque<usize>],
        stats: &mut [MessageStats],
        relaunch: &mut [Option<Time>],
        in_flight: Option<usize>,
    ) {
        stats[i].queued += 1;
        if in_flight == Some(i) {
            if relaunch[i].replace(t).is_some() {
                stats[i].record_loss();
            }
            return;
        }
        let node = msgs[i].sender;
        if let ControllerType::FifoQueue { depth } = controllers[node] {
            if pending[i].is_some() {
                // Already queued: fresh data overwrites in place.
                stats[i].record_loss();
                pending[i] = Some(t);
                retrying[i] = false;
            } else if fifos[node].len() < depth {
                fifos[node].push_back(i);
                pending[i] = Some(t);
            } else {
                // Queue full: the new instance is dropped outright.
                stats[i].record_loss();
            }
        } else if pending[i].replace(t).is_some() {
            stats[i].record_loss();
            retrying[i] = false;
        }
    }

    let mut relaunch: Vec<Option<Time>> = vec![None; msgs.len()];
    let mut qi = 0usize;
    let mut bus_free = Time::ZERO;
    loop {
        // Deliver all queue events up to the current bus-free instant.
        while qi < queue_events.len() && queue_events[qi].0 <= bus_free {
            let (t, i) = queue_events[qi];
            qi += 1;
            deliver(
                t,
                i,
                msgs,
                &controllers,
                &mut pending,
                &mut retrying,
                &mut fifos,
                &mut stats,
                &mut relaunch,
                None,
            );
        }

        // Each node offers one frame according to its controller type.
        let mut winner: Option<(usize, Time)> = None;
        for node in 0..node_count {
            let offer = match controllers[node] {
                ControllerType::FullCan => pending
                    .iter()
                    .enumerate()
                    .filter(|(j, p)| msgs[*j].sender == node && p.is_some())
                    .min_by_key(|(j, _)| msgs[*j].id.arbitration_key())
                    .map(|(j, _)| j),
                ControllerType::BasicCan => {
                    if registers[node].is_none() {
                        // Load the strongest pending frame; it becomes
                        // unrevokable until transmitted.
                        registers[node] = pending
                            .iter()
                            .enumerate()
                            .filter(|(j, p)| msgs[*j].sender == node && p.is_some())
                            .min_by_key(|(j, _)| msgs[*j].id.arbitration_key())
                            .map(|(j, _)| j);
                    }
                    registers[node]
                }
                ControllerType::FifoQueue { .. } => fifos[node].front().copied(),
            };
            if let Some(j) = offer {
                let Some(t) = pending[j] else { continue };
                let better = winner
                    .map(|(w, _)| msgs[j].id.arbitration_key() < msgs[w].id.arbitration_key())
                    .unwrap_or(true);
                if better {
                    winner = Some((j, t));
                }
            }
        }

        let (i, queued_at) = match winner {
            Some(w) => w,
            None => {
                // Idle: jump to the next queue event.
                if qi >= queue_events.len() {
                    break;
                }
                bus_free = queue_events[qi].0;
                continue;
            }
        };

        let start = bus_free;
        if start >= config.horizon {
            break;
        }
        let kind_obj = &msgs[i];
        let wire = backend.wire_bits(kind_obj.id.kind(), kind_obj.dlc);
        let (n_bits, d_bits) = match config.stuffing {
            SimStuffing::Worst => (wire.nominal_max, wire.data_max),
            SimStuffing::None => (wire.nominal_min, wire.data_min),
            SimStuffing::Random => {
                let n = rng.gen_range(wire.nominal_min..=wire.nominal_max);
                // Classic CAN has an empty (degenerate) data phase;
                // drawing from it would perturb the RNG stream.
                let d = if wire.data_max > wire.data_min {
                    rng.gen_range(wire.data_min..=wire.data_max)
                } else {
                    wire.data_min
                };
                (n, d)
            }
        };
        let c = tau * n_bits + tau_d * d_bits;
        let end = start + c;

        // Skip error hits that fell on the idle bus.
        while hit_idx < error_hits.len() && error_hits[hit_idx] < start {
            hit_idx += 1;
        }
        if hit_idx < error_hits.len() && error_hits[hit_idx] < end {
            // Transmission destroyed: error frame, then retry.
            let hit = error_hits[hit_idx];
            hit_idx += 1;
            let recover = hit + error_frame;
            if config.record_trace {
                trace.push(TraceEvent {
                    message: i,
                    start,
                    end: recover,
                    kind: TraceKind::ErrorHit,
                });
            }
            retrying[i] = true;
            bus_free = recover;
            continue;
        }

        // Success. Arrivals during the transmission land in the TX
        // paths while the frame is still on the wire (and occupying its
        // queue slot); new data for the in-flight frame itself parks.
        while qi < queue_events.len() && queue_events[qi].0 <= end {
            let (t, j) = queue_events[qi];
            qi += 1;
            deliver(
                t,
                j,
                msgs,
                &controllers,
                &mut pending,
                &mut retrying,
                &mut fifos,
                &mut stats,
                &mut relaunch,
                Some(i),
            );
        }
        if config.record_trace {
            trace.push(TraceEvent {
                message: i,
                start,
                end,
                kind: if retrying[i] {
                    TraceKind::Retransmission
                } else {
                    TraceKind::Transmission
                },
            });
        }
        retrying[i] = false;
        pending[i] = None;
        let node = msgs[i].sender;
        match controllers[node] {
            ControllerType::BasicCan => registers[node] = None,
            ControllerType::FifoQueue { .. } => {
                fifos[node].pop_front();
            }
            ControllerType::FullCan => {}
        }
        stats[i].record(end - queued_at, deadlines[i]);
        // A parked arrival becomes a fresh pending instance now.
        if let Some(t) = relaunch[i].take() {
            let node = msgs[i].sender;
            if let ControllerType::FifoQueue { depth } = controllers[node] {
                if fifos[node].len() < depth {
                    fifos[node].push_back(i);
                    pending[i] = Some(t);
                } else {
                    stats[i].record_loss();
                }
            } else {
                pending[i] = Some(t);
            }
        }
        bus_free = end;
    }

    SimReport {
        stats,
        trace,
        horizon: config.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{BurstInjection, NoInjection, PeriodicInjection};
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;

    fn msg(name: &str, id: u32, dlc: u8, period_ms: u64, jitter_ms: u64) -> CanMessage {
        CanMessage::new(
            name,
            CanId::standard(id).expect("valid id"),
            Dlc::new(dlc),
            Time::from_ms(period_ms),
            Time::from_ms(jitter_ms),
            0,
        )
    }

    fn net(messages: Vec<CanMessage>) -> CanNetwork {
        let mut n = CanNetwork::new(500_000);
        n.add_node(Node::new("A", ControllerType::FullCan));
        for m in messages {
            n.add_message(m);
        }
        n
    }

    #[test]
    fn lone_message_responds_in_one_frame_time() {
        let n = net(vec![msg("a", 0x100, 8, 10, 0)]);
        let rep = simulate(&n, &NoInjection, &SimConfig::default());
        let s = rep.by_name("a").expect("present");
        assert!(
            s.queued >= 190,
            "2 s at 10 ms: ~200 instances, got {}",
            s.queued
        );
        assert_eq!(s.completed, s.queued);
        assert_eq!(s.overwritten, 0);
        assert_eq!(s.max_response, Some(Time::from_us(270)));
        assert_eq!(s.min_response, Some(Time::from_us(270)));
        assert_eq!(s.deadline_misses, 0);
        assert_eq!(s.loss_fraction(), 0.0);
    }

    #[test]
    fn observed_utilization_matches_load_model() {
        let n = net(vec![msg("a", 0x100, 8, 10, 0), msg("b", 0x200, 8, 20, 0)]);
        let rep = simulate(&n, &NoInjection, &SimConfig::default());
        // 135 bits / 10 ms + 135 bits / 20 ms = 20.25 kbit/s of 500 -> 4.05 %.
        assert!((rep.observed_utilization() - 0.0405).abs() < 0.005);
    }

    #[test]
    fn interference_shows_in_responses() {
        let n = net(vec![msg("hi", 0x100, 8, 5, 0), msg("lo", 0x200, 8, 10, 0)]);
        let rep = simulate(&n, &NoInjection, &SimConfig::default());
        let lo = rep.by_name("lo").expect("present");
        // Sometimes delayed by hi, never more than analysis allows.
        assert!(lo.max_response.expect("ran") <= Time::from_us(540));
        assert!(lo.max_response.expect("ran") >= Time::from_us(270));
    }

    #[test]
    fn errors_cause_retransmissions() {
        let n = net(vec![msg("a", 0x100, 8, 10, 0)]);
        let inj = PeriodicInjection {
            interval: Time::from_us(3_700), // incommensurate with 10 ms
            phase: Time::from_us(100),
        };
        let rep = simulate(&n, &inj, &SimConfig::default());
        assert!(rep.trace.error_count() > 0);
        let s = rep.by_name("a").expect("present");
        // Hit frames recover: response = wasted start + error frame + retry.
        assert!(s.max_response.expect("ran") > Time::from_us(270));
        assert_eq!(s.completed, s.queued);
        let retx = rep
            .trace
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::Retransmission)
            .count();
        assert!(retx > 0);
    }

    #[test]
    fn overload_causes_overwrites() {
        // Two messages each needing 270 us every 500 us: 108 % load.
        let fast = |name: &str, id: u32| {
            let mut m = msg(name, id, 8, 1, 0);
            m.activation = carta_core::event_model::EventModel::periodic(Time::from_us(500));
            m
        };
        let n = net(vec![fast("a", 0x100), fast("b", 0x200)]);
        let rep = simulate(
            &n,
            &NoInjection,
            &SimConfig {
                horizon: Time::from_ms(500),
                ..SimConfig::default()
            },
        );
        assert!(rep.total_overwritten() > 0);
        assert!(rep.by_name("b").expect("present").loss_fraction() > 0.0);
    }

    #[test]
    fn determinism_per_seed() {
        let n = net(vec![msg("a", 0x100, 8, 10, 3), msg("b", 0x200, 4, 20, 5)]);
        let r1 = simulate(&n, &NoInjection, &SimConfig::default());
        let r2 = simulate(&n, &NoInjection, &SimConfig::default());
        assert_eq!(
            r1.by_name("a").unwrap().max_response,
            r2.by_name("a").unwrap().max_response
        );
        let r3 = simulate(
            &n,
            &NoInjection,
            &SimConfig {
                seed: 7,
                ..SimConfig::default()
            },
        );
        // Different seed, different phasing (statistically certain).
        assert!(
            r1.by_name("a").unwrap().sum_response != r3.by_name("a").unwrap().sum_response
                || r1.by_name("b").unwrap().sum_response != r3.by_name("b").unwrap().sum_response
        );
    }

    #[test]
    fn random_stuffing_between_bounds() {
        let n = net(vec![msg("a", 0x100, 8, 10, 0)]);
        let rep = simulate(
            &n,
            &NoInjection,
            &SimConfig {
                stuffing: SimStuffing::Random,
                ..SimConfig::default()
            },
        );
        let s = rep.by_name("a").expect("present");
        assert!(s.min_response.expect("ran") >= Time::from_us(222));
        assert!(s.max_response.expect("ran") <= Time::from_us(270));
        assert!(s.mean_response().expect("ran") > Time::from_us(222));
    }

    #[test]
    fn basic_can_register_causes_priority_inversion() {
        // Node A (basicCAN) sends hi (0x100) and lo (0x7F0); node B
        // sends mid (0x400). When lo sits in A's register, mid beats it
        // repeatedly — hi's worst observed response exceeds what the
        // same system shows with a fullCAN controller.
        let build = |ctrl: ControllerType| {
            let mut n = CanNetwork::new(125_000);
            let a = n.add_node(carta_can::network::Node::new("A", ctrl));
            let b = n.add_node(carta_can::network::Node::new("B", ControllerType::FullCan));
            n.add_message(CanMessage::new(
                "hi",
                CanId::standard(0x100).expect("valid"),
                Dlc::new(8),
                Time::from_ms(7),
                Time::from_ms(2),
                a,
            ));
            n.add_message(CanMessage::new(
                "lo",
                CanId::standard(0x7F0).expect("valid"),
                Dlc::new(8),
                Time::from_ms(20),
                Time::from_ms(8),
                a,
            ));
            // A near-saturating stream keeps the bus busy so the
            // registered `lo` frame keeps losing arbitration.
            n.add_message(CanMessage::new(
                "mid",
                CanId::standard(0x400).expect("valid"),
                Dlc::new(8),
                Time::from_us(1_200),
                Time::from_us(300),
                b,
            ));
            n
        };
        let cfg = SimConfig {
            horizon: Time::from_s(5),
            record_trace: false,
            ..SimConfig::default()
        };
        let basic = simulate(&build(ControllerType::BasicCan), &NoInjection, &cfg);
        let full = simulate(&build(ControllerType::FullCan), &NoInjection, &cfg);
        let basic_hi = basic.by_name("hi").unwrap().max_response.expect("ran");
        let full_hi = full.by_name("hi").unwrap().max_response.expect("ran");
        assert!(
            basic_hi > full_hi + Time::from_ms(1),
            "basicCAN should show inversion: {basic_hi} vs fullCAN {full_hi}"
        );
    }

    #[test]
    fn fifo_queue_delays_and_drops() {
        // A FIFO(2) node with three messages: the strongest message can
        // sit behind a weaker, earlier-queued one, and bursts overflow
        // the queue (drops counted as overwritten).
        let mut n = CanNetwork::new(125_000);
        let a = n.add_node(carta_can::network::Node::new(
            "A",
            ControllerType::FifoQueue { depth: 2 },
        ));
        for (k, (name, id, period_us)) in [
            ("fast", 0x100u32, 3_000u64),
            ("mid", 0x200, 4_000),
            ("slow", 0x300, 5_000),
        ]
        .iter()
        .enumerate()
        {
            let _ = k;
            n.add_message(CanMessage::new(
                *name,
                CanId::standard(*id).expect("valid"),
                Dlc::new(8),
                Time::from_us(*period_us),
                Time::from_us(1_000),
                a,
            ));
        }
        let rep = simulate(
            &n,
            &NoInjection,
            &SimConfig {
                horizon: Time::from_s(5),
                record_trace: false,
                ..SimConfig::default()
            },
        );
        // The queue holds only 2 of 3 streams at a time: drops happen.
        assert!(rep.total_overwritten() > 0, "FIFO(2) must overflow");
        // And the strongest message's worst response exceeds a single
        // frame time by a clear margin: it waited behind an
        // earlier-queued weaker frame, which per-message buffers would
        // never make it do on an otherwise idle bus.
        let fast = rep.by_name("fast").unwrap();
        assert!(fast.max_response.expect("ran") > Time::from_us(1500));
    }

    #[test]
    fn instance_conservation() {
        // Every queued instance is eventually accounted for: completed,
        // overwritten, or still pending when the horizon cut off.
        for seed in [1u64, 2, 3] {
            let n = net(vec![
                msg("a", 0x100, 8, 5, 2),
                msg("b", 0x200, 8, 7, 3),
                msg("c", 0x300, 4, 11, 1),
            ]);
            let rep = simulate(
                &n,
                &NoInjection,
                &SimConfig {
                    seed,
                    record_trace: false,
                    ..SimConfig::default()
                },
            );
            for s in &rep.stats {
                let accounted = s.completed + s.overwritten;
                assert!(
                    accounted <= s.queued && s.queued - accounted <= 1,
                    "{} (seed {seed}): queued {} vs completed {} + lost {}",
                    s.name,
                    s.queued,
                    s.completed,
                    s.overwritten
                );
                // Outcome log length matches the accounted instances.
                assert_eq!(s.outcomes().len() as u64, accounted);
            }
        }
    }

    #[test]
    fn percentiles_are_ordered() {
        let n = net(vec![msg("hi", 0x100, 8, 5, 2), msg("lo", 0x200, 8, 10, 3)]);
        let rep = simulate(&n, &NoInjection, &SimConfig::default());
        let lo = rep.by_name("lo").expect("present");
        let p50 = lo.percentile(0.5).expect("ran");
        let p99 = lo.percentile(0.99).expect("ran");
        let max = lo.max_response.expect("ran");
        assert!(p50 <= p99);
        assert!(p99 <= max);
        assert_eq!(lo.percentile(1.0), Some(max));
        assert_eq!(lo.percentile(0.0), lo.min_response);
        let empty = MessageStats::new("x".into());
        assert_eq!(empty.percentile(0.5), None);
    }

    #[test]
    fn n_out_of_m_statistics() {
        // Direct unit check of the window statistics.
        let mut s = MessageStats::new("x".into());
        for ok in [
            true, false, false, true, false, true, true, false, false, false,
        ] {
            if ok {
                s.record(Time::from_us(100), Time::from_ms(1));
            } else {
                s.record_loss();
            }
        }
        assert_eq!(s.max_consecutive_misses(), 3);
        assert_eq!(s.worst_misses_in_window(3), 3);
        assert_eq!(s.worst_misses_in_window(5), 3);
        assert_eq!(s.worst_misses_in_window(10), 6);
        assert!(s.meets_n_out_of_m(6, 10));
        assert!(!s.meets_n_out_of_m(5, 10));
        assert_eq!(s.worst_misses_in_window(0), 0);
        assert_eq!(s.outcomes().len(), 10);

        // An overloaded bus violates tight N-out-of-M guarantees; the
        // observation machinery reports it.
        let fast = |name: &str, id: u32| {
            let mut m = msg(name, id, 8, 1, 0);
            m.activation = carta_core::event_model::EventModel::periodic(Time::from_us(500));
            m
        };
        let n = net(vec![fast("a", 0x100), fast("b", 0x200)]);
        let rep = simulate(
            &n,
            &NoInjection,
            &SimConfig {
                horizon: Time::from_ms(500),
                ..SimConfig::default()
            },
        );
        let b = rep.by_name("b").expect("present");
        assert!(b.max_consecutive_misses() > 0);
        assert!(!b.meets_n_out_of_m(0, 10));
    }

    #[test]
    fn burst_injection_in_trace() {
        let n = net(vec![msg("a", 0x100, 8, 5, 0)]);
        let inj = BurstInjection {
            burst_len: 3,
            intra_gap: Time::from_us(100),
            inter_burst: Time::from_us(17_100), // sweeps all phases of the 5 ms period
            phase: Time::from_us(50),
        };
        let rep = simulate(&n, &inj, &SimConfig::default());
        assert!(rep.trace.error_count() > 0);
    }
}
