//! Bus traces recorded by the simulator.

use carta_core::time::Time;

/// What happened on the bus during one trace segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A frame transmitted successfully.
    Transmission,
    /// A transmission aborted by a bus error (followed by the error
    /// frame).
    ErrorHit,
    /// A successful retransmission after one or more errors.
    Retransmission,
}

/// One bus occupancy segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Index of the message occupying the bus.
    pub message: usize,
    /// Segment start.
    pub start: Time,
    /// Segment end (exclusive).
    pub end: Time,
    /// Segment kind.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Segment duration.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// A recorded bus trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (must not precede the previous event's start).
    pub fn push(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|e| event.start >= e.start),
            "trace must be time-ordered"
        );
        self.events.push(event);
    }

    /// All events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events overlapping the window `[from, to)`.
    pub fn window(&self, from: Time, to: Time) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.end > from && e.start < to)
    }

    /// Total bus-busy time within the trace.
    pub fn busy_time(&self) -> Time {
        self.events.iter().map(|e| e.duration()).sum()
    }

    /// Number of error hits recorded.
    pub fn error_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == TraceKind::ErrorHit)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(msg: usize, s: u64, e: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            message: msg,
            start: Time::from_us(s),
            end: Time::from_us(e),
            kind,
        }
    }

    #[test]
    fn accumulates_and_windows() {
        let mut t = Trace::new();
        t.push(ev(0, 0, 270, TraceKind::Transmission));
        t.push(ev(1, 270, 300, TraceKind::ErrorHit));
        t.push(ev(1, 300, 570, TraceKind::Retransmission));
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.busy_time(), Time::from_us(270 + 30 + 270));
        assert_eq!(t.error_count(), 1);
        let in_window: Vec<_> = t.window(Time::from_us(280), Time::from_us(310)).collect();
        assert_eq!(in_window.len(), 2);
        assert_eq!(
            ev(0, 0, 270, TraceKind::Transmission).duration(),
            Time::from_us(270)
        );
    }
}
