//! # carta-sim
//!
//! A discrete-event CAN bus simulator for the `carta` workspace.
//!
//! The paper argues (Sec. 2) that simulation "suffers from serious
//! corner case coverage problems" — this crate makes that argument
//! executable: it replays a [`CanNetwork`](carta_can::network::CanNetwork)
//! with seeded random jitter phasings, random or worst-case bit
//! stuffing, and pluggable error injection, then reports per-message
//! response statistics, buffer-overwrite ("message loss") counts and a
//! bus trace renderable as an ASCII Gantt chart (Figure 2).
//!
//! The simulator doubles as the validation oracle for the analytical
//! side: observed response times must never exceed the analytical
//! worst-case bounds (see the workspace integration tests).
//!
//! ```
//! use carta_can::prelude::*;
//! use carta_core::time::Time;
//! use carta_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = CanNetwork::new(500_000);
//! let a = net.add_node(Node::new("EMS", ControllerType::FullCan));
//! net.add_message(CanMessage::new(
//!     "rpm", CanId::standard(0x100)?, Dlc::new(8),
//!     Time::from_ms(10), Time::from_ms(2), a,
//! ));
//! let report = simulate(&net, &NoInjection, &SimConfig::default());
//! assert_eq!(report.by_name("rpm").unwrap().overwritten, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod gantt;
pub mod inject;
pub mod measure;
pub mod trace;

/// Convenient single import for the common types of this crate.
pub mod prelude {
    pub use crate::engine::{
        simulate, simulate_with_arrivals, MessageStats, SimConfig, SimReport, SimStuffing,
    };
    pub use crate::gantt::{render, GanttConfig};
    pub use crate::inject::{
        BurstInjection, ErrorInjector, NoInjection, PeriodicInjection, RandomSporadicInjection,
    };
    pub use crate::measure::{audit_against, completion_instants, observed_output_model};
    pub use crate::trace::{Trace, TraceEvent, TraceKind};
}
