//! Measurement extraction: turning simulated traces back into event
//! models and auditing them against datasheets.
//!
//! This closes the paper's verification loop from the measuring side:
//! a party that *receives* a guarantee can record the stream (here:
//! from the simulator standing in for a bus logger) and check that the
//! observation stays within the guaranteed event model — "what is
//! initially assumed and required, must later be guaranteed, and vice
//! versa" (Sec. 5.1).

use crate::trace::{Trace, TraceKind};
use carta_core::event_model::{EventModel, StreamViolation};
use carta_core::time::Time;

/// Completion instants of one message's successful transmissions — the
/// stream a receiver actually observes on the bus.
pub fn completion_instants(trace: &Trace, message: usize) -> Vec<Time> {
    trace
        .events()
        .iter()
        .filter(|e| {
            e.message == message
                && matches!(e.kind, TraceKind::Transmission | TraceKind::Retransmission)
        })
        .map(|e| e.end)
        .collect()
}

/// Fits a `(P, J, d)` event model around the observed completions of a
/// message (see [`EventModel::from_trace`]); `None` with fewer than two
/// completions.
pub fn observed_output_model(trace: &Trace, message: usize) -> Option<EventModel> {
    EventModel::from_trace(&completion_instants(trace, message))
}

/// Audits the observed stream of `message` against a guaranteed bound.
/// Windows of up to `max_window` consecutive events are checked.
///
/// # Errors
///
/// Returns the first [`StreamViolation`].
pub fn audit_against(
    trace: &Trace,
    message: usize,
    bound: &EventModel,
    max_window: usize,
) -> Result<(), StreamViolation> {
    bound.bounds_stream(&completion_instants(trace, message), max_window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::inject::NoInjection;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::{CanNetwork, Node};

    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        net.add_message(CanMessage::new(
            "rpm",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(8),
            Time::from_ms(10),
            Time::from_ms(2),
            a,
        ));
        net.add_message(CanMessage::new(
            "status",
            CanId::standard(0x300).expect("valid"),
            Dlc::new(4),
            Time::from_ms(50),
            Time::ZERO,
            a,
        ));
        net
    }

    #[test]
    fn observed_model_bounds_the_observation() {
        let rep = simulate(&net(), &NoInjection, &SimConfig::default());
        let model = observed_output_model(&rep.trace, 0).expect("enough samples");
        // The fitted model must bound its own source trace.
        assert!(audit_against(&rep.trace, 0, &model, 8).is_ok());
        // The fitted period tracks the true 10 ms within a fraction of
        // a percent (endpoint jitter skews the mean slightly).
        let p = model.period().as_ms_f64();
        assert!((p - 10.0).abs() < 0.1, "fitted period {p} ms");
    }

    #[test]
    fn audit_passes_against_honest_guarantee() {
        let rep = simulate(&net(), &NoInjection, &SimConfig::default());
        // The OEM's analytical output model: send jitter 2 ms plus the
        // response span (≤ one blocking frame here) — 3 ms is generous.
        let guarantee = EventModel::periodic_with_jitter(Time::from_ms(10), Time::from_ms(3))
            .with_dmin(Time::from_us(200));
        assert!(audit_against(&rep.trace, 0, &guarantee, 8).is_ok());
    }

    #[test]
    fn audit_catches_an_overpromising_guarantee() {
        let rep = simulate(&net(), &NoInjection, &SimConfig::default());
        // A zero-jitter promise for a 2 ms-jitter stream cannot hold.
        let bogus = EventModel::periodic(Time::from_ms(10));
        let violation = audit_against(&rep.trace, 0, &bogus, 4).expect_err("caught");
        assert!(violation.span < violation.required);
    }

    #[test]
    fn no_completions_no_model() {
        let trace = Trace::new();
        assert!(observed_output_model(&trace, 0).is_none());
        assert!(completion_instants(&trace, 0).is_empty());
    }
}
