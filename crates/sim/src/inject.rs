//! Error-injection processes for the simulator.
//!
//! The analysis side bounds error hits with
//! [`ErrorModel`](carta_can::error_model::ErrorModel); the simulator
//! needs concrete hit *instants*. Every process here stays within the
//! corresponding analytical bound, so simulated response times must
//! never exceed the analytical worst case — the cross-validation
//! invariant exercised by the integration tests.

use carta_core::time::Time;
use rand::rngs::StdRng;
use rand::Rng;

/// A generator of bus-error hit instants.
pub trait ErrorInjector {
    /// Returns all hit instants in `[0, horizon)`, sorted ascending.
    fn hits_until(&self, horizon: Time, rng: &mut StdRng) -> Vec<Time>;
}

/// No errors at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInjection;

impl ErrorInjector for NoInjection {
    fn hits_until(&self, _horizon: Time, _rng: &mut StdRng) -> Vec<Time> {
        Vec::new()
    }
}

/// Periodic hits every `interval` starting at `phase` — the worst-case
/// realization of [`SporadicErrors`](carta_can::error_model::SporadicErrors).
#[derive(Debug, Clone, Copy)]
pub struct PeriodicInjection {
    /// Distance between hits.
    pub interval: Time,
    /// Offset of the first hit.
    pub phase: Time,
}

impl ErrorInjector for PeriodicInjection {
    fn hits_until(&self, horizon: Time, _rng: &mut StdRng) -> Vec<Time> {
        let mut hits = Vec::new();
        let mut t = self.phase;
        while t < horizon {
            hits.push(t);
            t += self.interval;
        }
        hits
    }
}

/// Random hits with a *minimum* distance of `min_interval` and a random
/// extra gap up to `max_extra` — always sparser than the sporadic model
/// with the same interval.
#[derive(Debug, Clone, Copy)]
pub struct RandomSporadicInjection {
    /// Minimum distance between hits (matches the analytical interval).
    pub min_interval: Time,
    /// Maximum additional random spacing.
    pub max_extra: Time,
}

impl ErrorInjector for RandomSporadicInjection {
    fn hits_until(&self, horizon: Time, rng: &mut StdRng) -> Vec<Time> {
        let mut hits = Vec::new();
        let mut t = Time::from_ns(rng.gen_range(0..=self.min_interval.as_ns()));
        while t < horizon {
            hits.push(t);
            let extra = if self.max_extra.is_zero() {
                0
            } else {
                rng.gen_range(0..=self.max_extra.as_ns())
            };
            t = t + self.min_interval + Time::from_ns(extra);
        }
        hits
    }
}

/// Bursts of `burst_len` hits spaced `intra_gap`, bursts every
/// `inter_burst` — the worst-case realization of
/// [`BurstErrors`](carta_can::error_model::BurstErrors).
#[derive(Debug, Clone, Copy)]
pub struct BurstInjection {
    /// Hits per burst.
    pub burst_len: u64,
    /// Distance between hits inside a burst.
    pub intra_gap: Time,
    /// Distance between burst starts.
    pub inter_burst: Time,
    /// Offset of the first burst.
    pub phase: Time,
}

impl ErrorInjector for BurstInjection {
    fn hits_until(&self, horizon: Time, _rng: &mut StdRng) -> Vec<Time> {
        let mut hits = Vec::new();
        let mut burst_start = self.phase;
        while burst_start < horizon {
            for k in 0..self.burst_len {
                let t = burst_start + self.intra_gap * k;
                if t < horizon {
                    hits.push(t);
                }
            }
            burst_start += self.inter_burst;
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::error_model::{BurstErrors, ErrorModel, SporadicErrors};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn periodic_injection_counts() {
        let inj = PeriodicInjection {
            interval: Time::from_ms(10),
            phase: Time::ZERO,
        };
        let hits = inj.hits_until(Time::from_ms(35), &mut rng());
        assert_eq!(
            hits,
            vec![
                Time::ZERO,
                Time::from_ms(10),
                Time::from_ms(20),
                Time::from_ms(30)
            ]
        );
    }

    #[test]
    fn injections_respect_analytical_bounds() {
        let horizon = Time::from_s(1);
        // Periodic vs sporadic model.
        let inj = PeriodicInjection {
            interval: Time::from_ms(7),
            phase: Time::ZERO,
        };
        let model = SporadicErrors::new(Time::from_ms(7));
        let hits = inj.hits_until(horizon, &mut rng());
        assert!(hits.len() as u64 <= model.max_hits(horizon));

        // Random sporadic is sparser still.
        let rinj = RandomSporadicInjection {
            min_interval: Time::from_ms(7),
            max_extra: Time::from_ms(5),
        };
        let rhits = rinj.hits_until(horizon, &mut rng());
        assert!(rhits.len() as u64 <= model.max_hits(horizon));
        for w in rhits.windows(2) {
            assert!(w[1] - w[0] >= Time::from_ms(7));
        }

        // Burst injection vs burst model.
        let binj = BurstInjection {
            burst_len: 3,
            intra_gap: Time::from_us(200),
            inter_burst: Time::from_ms(20),
            phase: Time::ZERO,
        };
        let bmodel = BurstErrors::new(3, Time::from_us(200), Time::from_ms(20));
        let bhits = binj.hits_until(horizon, &mut rng());
        assert!(bhits.len() as u64 <= bmodel.max_hits(horizon));
    }

    #[test]
    fn no_injection_is_empty() {
        assert!(NoInjection
            .hits_until(Time::from_s(10), &mut rng())
            .is_empty());
    }
}
