//! CAN identifiers, deadlines and the message model.

use crate::frame::{Dlc, FrameKind};
use carta_core::event_model::EventModel;
use carta_core::time::Time;
use std::fmt;

/// A CAN identifier. On CAN the identifier doubles as the arbitration
/// priority: the numerically *smaller* identifier wins.
///
/// # Examples
///
/// ```
/// use carta_can::message::CanId;
/// let brake = CanId::standard(0x100)?;
/// let comfort = CanId::standard(0x400)?;
/// assert!(brake.beats(comfort));
/// # Ok::<(), carta_can::message::InvalidIdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CanId {
    raw: u32,
    kind: FrameKind,
}

/// Error returned when a CAN identifier is out of range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidIdError {
    raw: u32,
    kind: FrameKind,
}

impl fmt::Display for InvalidIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let limit = match self.kind {
            FrameKind::Standard => 0x7FF,
            FrameKind::Extended => 0x1FFF_FFFF,
        };
        write!(
            f,
            "identifier {:#x} exceeds the {:?}-frame limit {:#x}",
            self.raw, self.kind, limit
        )
    }
}

impl std::error::Error for InvalidIdError {}

impl CanId {
    /// Creates an 11-bit (standard) identifier.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidIdError`] if `raw > 0x7FF`.
    pub fn standard(raw: u32) -> Result<Self, InvalidIdError> {
        if raw > 0x7FF {
            return Err(InvalidIdError {
                raw,
                kind: FrameKind::Standard,
            });
        }
        Ok(CanId {
            raw,
            kind: FrameKind::Standard,
        })
    }

    /// Creates a 29-bit (extended) identifier.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidIdError`] if `raw > 0x1FFF_FFFF`.
    pub fn extended(raw: u32) -> Result<Self, InvalidIdError> {
        if raw > 0x1FFF_FFFF {
            return Err(InvalidIdError {
                raw,
                kind: FrameKind::Extended,
            });
        }
        Ok(CanId {
            raw,
            kind: FrameKind::Extended,
        })
    }

    /// Raw identifier value.
    pub fn raw(&self) -> u32 {
        self.raw
    }

    /// Identifier format.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// Total arbitration ordering key — lower wins the bus.
    ///
    /// Standard and extended identifiers arbitrate bit-by-bit: the
    /// 11-bit base is compared first, and on a tie the standard frame
    /// wins (its RTR bit comes where the extended frame sends SRR=1).
    pub fn arbitration_key(&self) -> u64 {
        match self.kind {
            FrameKind::Standard => u64::from(self.raw) << 19,
            FrameKind::Extended => {
                let base = u64::from(self.raw >> 18); // top 11 bits
                let ext = u64::from(self.raw & 0x3_FFFF); // low 18 bits
                (base << 19) | (1 << 18) | ext
            }
        }
    }

    /// `true` if this identifier wins arbitration against `other`.
    pub fn beats(&self, other: CanId) -> bool {
        self.arbitration_key() < other.arbitration_key()
    }
}

impl fmt::Display for CanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FrameKind::Standard => write!(f, "{:#05x}", self.raw),
            FrameKind::Extended => write!(f, "{:#010x}x", self.raw),
        }
    }
}

/// How a message's deadline is derived.
///
/// The paper (Sec. 3.2) notes that for a message never to be lost
/// (overwritten in the sender's buffer), its response time must not
/// exceed its **minimum re-arrival time** — the tightest deadline
/// policy. Less strict interpretations are provided for what-if runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeadlinePolicy {
    /// Deadline = period (implicit deadline).
    Period,
    /// Deadline = minimum distance between two queuings,
    /// `δ⁻(2) = max(d_min, P − J)` — the paper's worst-case setting.
    #[default]
    MinReArrival,
    /// An explicitly specified deadline.
    Explicit(Time),
}

impl DeadlinePolicy {
    /// Resolves the policy against an activation model.
    pub fn deadline(&self, activation: &EventModel) -> Time {
        match self {
            DeadlinePolicy::Period => activation.period(),
            DeadlinePolicy::MinReArrival => activation.delta_min(2),
            DeadlinePolicy::Explicit(t) => *t,
        }
    }
}

/// One row of the communication matrix: a message on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanMessage {
    /// Human-readable signal/message name.
    pub name: String,
    /// Identifier (and thus priority).
    pub id: CanId,
    /// Payload length.
    pub dlc: Dlc,
    /// Queuing event model (period, send jitter, minimum distance).
    pub activation: EventModel,
    /// Deadline derivation rule.
    pub deadline: DeadlinePolicy,
    /// Index of the sending ECU (node) on the bus.
    pub sender: usize,
}

impl CanMessage {
    /// Convenience constructor for a periodic message with jitter.
    pub fn new(
        name: impl Into<String>,
        id: CanId,
        dlc: Dlc,
        period: Time,
        jitter: Time,
        sender: usize,
    ) -> Self {
        CanMessage {
            name: name.into(),
            id,
            dlc,
            activation: EventModel::periodic_with_jitter(period, jitter),
            deadline: DeadlinePolicy::default(),
            sender,
        }
    }

    /// Returns a copy with a different deadline policy.
    pub fn with_deadline(mut self, deadline: DeadlinePolicy) -> Self {
        self.deadline = deadline;
        self
    }

    /// Returns a copy with a different activation model.
    pub fn with_activation(mut self, activation: EventModel) -> Self {
        self.activation = activation;
        self
    }

    /// The resolved deadline of this message.
    pub fn resolved_deadline(&self) -> Time {
        self.deadline.deadline(&self.activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_ranges_enforced() {
        assert!(CanId::standard(0x7FF).is_ok());
        assert!(CanId::standard(0x800).is_err());
        assert!(CanId::extended(0x1FFF_FFFF).is_ok());
        assert!(CanId::extended(0x2000_0000).is_err());
        let err = CanId::standard(0x800).expect_err("out of range");
        assert!(err.to_string().contains("0x800"));
    }

    #[test]
    fn arbitration_lower_wins() {
        let a = CanId::standard(0x100).expect("valid");
        let b = CanId::standard(0x101).expect("valid");
        assert!(a.beats(b));
        assert!(!b.beats(a));
    }

    #[test]
    fn standard_beats_extended_on_equal_base() {
        // Extended ID whose top 11 bits equal the standard ID.
        let std = CanId::standard(0x100).expect("valid");
        let ext = CanId::extended(0x100 << 18).expect("valid");
        assert!(std.beats(ext));
        assert!(!ext.beats(std));
        // But a smaller extended base still beats a larger standard ID.
        let ext_small = CanId::extended(0x0FF << 18).expect("valid");
        assert!(ext_small.beats(std));
    }

    #[test]
    fn display_formats() {
        assert_eq!(CanId::standard(0x42).expect("valid").to_string(), "0x042");
        assert!(CanId::extended(0x42)
            .expect("valid")
            .to_string()
            .ends_with('x'));
    }

    #[test]
    fn deadline_policies() {
        let em = EventModel::periodic_with_jitter(Time::from_ms(10), Time::from_ms(2));
        assert_eq!(DeadlinePolicy::Period.deadline(&em), Time::from_ms(10));
        assert_eq!(DeadlinePolicy::MinReArrival.deadline(&em), Time::from_ms(8));
        assert_eq!(
            DeadlinePolicy::Explicit(Time::from_ms(5)).deadline(&em),
            Time::from_ms(5)
        );
    }

    #[test]
    fn message_builders() {
        let id = CanId::standard(0x123).expect("valid");
        let m = CanMessage::new(
            "engine_rpm",
            id,
            Dlc::new(4),
            Time::from_ms(10),
            Time::ZERO,
            0,
        )
        .with_deadline(DeadlinePolicy::Period);
        assert_eq!(m.resolved_deadline(), Time::from_ms(10));
        let m2 = m.with_activation(EventModel::periodic_with_jitter(
            Time::from_ms(10),
            Time::from_ms(4),
        ));
        assert_eq!(m2.deadline, DeadlinePolicy::Period);
        assert_eq!(m2.resolved_deadline(), Time::from_ms(10));
    }
}
