//! Bit-exact CAN frame encoding: field layout, CRC-15 and the actual
//! stuffing algorithm.
//!
//! The analysis uses closed-form worst-case frame lengths
//! ([`FrameKind::max_bits`]); this module encodes *real* frames bit by
//! bit, which serves two purposes:
//!
//! * it **validates** the closed forms — property tests check that no
//!   encodable frame is ever longer than the worst-case formula or
//!   shorter than the best case,
//! * it lets the simulator derive payload-accurate frame lengths
//!   instead of sampling them.
//!
//! [`FrameKind::max_bits`]: crate::frame::FrameKind::max_bits

use crate::frame::FrameKind;
use crate::message::CanId;

/// CRC-15/CAN polynomial (x¹⁵+x¹⁴+x¹⁰+x⁸+x⁷+x⁴+x³+1), top bit implicit.
const CRC15_POLY: u16 = 0x4599;

/// Computes the CAN CRC-15 over a bit sequence (MSB-first semantics,
/// zero initial value, as specified by ISO 11898-1).
pub fn crc15(bits: &[bool]) -> u16 {
    let mut crc: u16 = 0;
    for &bit in bits {
        let crc_next = ((crc >> 14) & 1 == 1) ^ bit;
        crc <<= 1;
        crc &= 0x7FFF;
        if crc_next {
            crc ^= CRC15_POLY;
        }
    }
    crc & 0x7FFF
}

/// Applies CAN bit stuffing: after five consecutive equal bits a
/// complementary stuff bit is inserted; stuff bits themselves count
/// toward subsequent runs.
pub fn stuff(bits: &[bool]) -> Vec<bool> {
    let mut out = Vec::with_capacity(bits.len() + bits.len() / 4);
    let mut run_bit = None;
    let mut run_len = 0u32;
    for &b in bits {
        out.push(b);
        if Some(b) == run_bit {
            run_len += 1;
        } else {
            run_bit = Some(b);
            run_len = 1;
        }
        if run_len == 5 {
            let stuffed = !b;
            out.push(stuffed);
            run_bit = Some(stuffed);
            run_len = 1;
        }
    }
    out
}

/// A fully encoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// The stuff-exposed region (SOF through CRC) before stuffing.
    pub stuffable: Vec<bool>,
    /// The same region after stuffing.
    pub stuffed: Vec<bool>,
    /// The fixed tail (delimiters, ACK, EOF, interframe space) that is
    /// never stuffed.
    pub tail_bits: usize,
    /// The 15-bit CRC value carried by the frame.
    pub crc: u16,
}

impl EncodedFrame {
    /// Total frame length on the wire, in bits (including the 3-bit
    /// interframe space, matching [`FrameKind::base_bits`]).
    ///
    /// [`FrameKind::base_bits`]: crate::frame::FrameKind::base_bits
    pub fn total_bits(&self) -> u64 {
        (self.stuffed.len() + self.tail_bits) as u64
    }

    /// Number of inserted stuff bits.
    pub fn stuff_bits(&self) -> u64 {
        (self.stuffed.len() - self.stuffable.len()) as u64
    }
}

fn push_value(bits: &mut Vec<bool>, value: u32, width: u32) {
    for i in (0..width).rev() {
        bits.push((value >> i) & 1 == 1);
    }
}

/// Encodes a classic CAN data frame bit by bit.
///
/// # Panics
///
/// Panics if `data` exceeds 8 bytes.
pub fn encode_frame(id: CanId, data: &[u8]) -> EncodedFrame {
    assert!(data.len() <= 8, "classic CAN carries at most 8 data bytes");
    let mut bits: Vec<bool> = Vec::with_capacity(100);
    bits.push(false); // SOF (dominant)
    match id.kind() {
        FrameKind::Standard => {
            push_value(&mut bits, id.raw(), 11);
            bits.push(false); // RTR (data frame)
            bits.push(false); // IDE (standard)
            bits.push(false); // r0
        }
        FrameKind::Extended => {
            push_value(&mut bits, id.raw() >> 18, 11); // base ID
            bits.push(true); // SRR (recessive)
            bits.push(true); // IDE (extended)
            push_value(&mut bits, id.raw() & 0x3_FFFF, 18); // extension
            bits.push(false); // RTR
            bits.push(false); // r1
            bits.push(false); // r0
        }
    }
    push_value(&mut bits, data.len() as u32, 4); // DLC
    for &byte in data {
        push_value(&mut bits, u32::from(byte), 8);
    }
    let crc = crc15(&bits);
    push_value(&mut bits, u32::from(crc), 15);

    let stuffed = stuff(&bits);
    EncodedFrame {
        stuffable: bits,
        stuffed,
        // CRC delimiter + ACK slot + ACK delimiter + 7 EOF + 3 IFS.
        tail_bits: 1 + 2 + 7 + 3,
        crc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Dlc;
    use proptest::prelude::*;

    fn sid(raw: u32) -> CanId {
        CanId::standard(raw).expect("valid id")
    }

    #[test]
    fn field_layout_lengths() {
        // Standard: 1 SOF + 11 ID + 3 control + 4 DLC + 15 CRC = 34
        // stuffable bits at zero payload — matching FrameKind.
        let f = encode_frame(sid(0x123), &[]);
        assert_eq!(
            f.stuffable.len() as u64,
            FrameKind::Standard.stuffable_bits(Dlc::new(0))
        );
        assert_eq!(f.tail_bits, 13);
        // Extended adds 20 bits of arbitration/control.
        let e = encode_frame(CanId::extended(0x1234_5678).expect("valid"), &[]);
        assert_eq!(
            e.stuffable.len() as u64,
            FrameKind::Extended.stuffable_bits(Dlc::new(0))
        );
        // 8-byte standard frame: 98 stuffable bits.
        let f8 = encode_frame(sid(0x123), &[0xAA; 8]);
        assert_eq!(
            f8.stuffable.len() as u64,
            FrameKind::Standard.stuffable_bits(Dlc::new(8))
        );
    }

    #[test]
    fn alternating_payload_needs_no_stuffing_in_data() {
        // 0xAA = 10101010: no runs of five in the data section.
        let f = encode_frame(sid(0x555), &[0xAA; 8]);
        // Some stuffing may still occur in header/CRC, but far from max.
        assert!(f.stuff_bits() < FrameKind::Standard.max_stuff_bits(Dlc::new(8)));
    }

    #[test]
    fn monotone_runs_force_stuffing() {
        // All-zero ID and payload produce long dominant runs.
        let f = encode_frame(sid(0), &[0x00; 8]);
        assert!(
            f.stuff_bits() >= 10,
            "got only {} stuff bits",
            f.stuff_bits()
        );
    }

    #[test]
    fn stuffing_breaks_every_run_of_five() {
        let f = encode_frame(sid(0), &[0x00; 8]);
        let mut run = 1;
        for w in f.stuffed.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                run = 1;
            }
            assert!(run <= 5, "run of six equal bits on the wire");
        }
    }

    #[test]
    fn crc_is_linear_over_xor() {
        // CRC with zero init is GF(2)-linear: crc(a^b) = crc(a)^crc(b).
        let a: Vec<bool> = (0..64).map(|i| i % 3 == 0).collect();
        let b: Vec<bool> = (0..64).map(|i| i % 5 == 0).collect();
        let x: Vec<bool> = a.iter().zip(&b).map(|(p, q)| p ^ q).collect();
        assert_eq!(crc15(&x), crc15(&a) ^ crc15(&b));
        assert_eq!(crc15(&[]), 0);
    }

    #[test]
    fn crc_detects_single_bit_errors() {
        let f = encode_frame(sid(0x2A5), &[1, 2, 3, 4]);
        let data_end = f.stuffable.len() - 15;
        for flip in 0..data_end {
            let mut corrupted = f.stuffable[..data_end].to_vec();
            corrupted[flip] = !corrupted[flip];
            assert_ne!(
                crc15(&corrupted),
                f.crc,
                "single-bit error at {flip} not detected"
            );
        }
    }

    proptest! {
        #[test]
        fn real_frames_respect_the_closed_forms(
            raw in 0u32..0x800,
            data in proptest::collection::vec(any::<u8>(), 0..=8),
        ) {
            let id = sid(raw);
            let f = encode_frame(id, &data);
            let dlc = Dlc::new(data.len() as u8);
            // Total length bounded by the analysis formulas.
            prop_assert!(f.total_bits() >= FrameKind::Standard.min_bits(dlc));
            prop_assert!(f.total_bits() <= FrameKind::Standard.max_bits(dlc));
            // Stuff-bit count bounded by ⌊(g−1)/4⌋.
            prop_assert!(f.stuff_bits() <= FrameKind::Standard.max_stuff_bits(dlc));
        }

        #[test]
        fn extended_frames_respect_the_closed_forms(
            raw in 0u32..0x2000_0000,
            data in proptest::collection::vec(any::<u8>(), 0..=8),
        ) {
            let id = CanId::extended(raw).expect("in range");
            let f = encode_frame(id, &data);
            let dlc = Dlc::new(data.len() as u8);
            prop_assert!(f.total_bits() >= FrameKind::Extended.min_bits(dlc));
            prop_assert!(f.total_bits() <= FrameKind::Extended.max_bits(dlc));
        }

        #[test]
        fn destuffing_roundtrip(
            raw in 0u32..0x800,
            data in proptest::collection::vec(any::<u8>(), 0..=8),
        ) {
            // Removing stuff bits (every bit following five equal ones)
            // recovers the original sequence.
            let f = encode_frame(sid(raw), &data);
            let mut destuffed = Vec::with_capacity(f.stuffable.len());
            let mut run_bit = None;
            let mut run_len = 0u32;
            let mut skip_next = false;
            for &b in &f.stuffed {
                if skip_next {
                    skip_next = false;
                    run_bit = Some(b);
                    run_len = 1;
                    continue;
                }
                destuffed.push(b);
                if Some(b) == run_bit {
                    run_len += 1;
                } else {
                    run_bit = Some(b);
                    run_len = 1;
                }
                if run_len == 5 {
                    skip_next = true;
                }
            }
            prop_assert_eq!(destuffed, f.stuffable);
        }
    }
}
