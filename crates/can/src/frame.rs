//! CAN frame sizes and transmission times, including worst-case bit
//! stuffing.
//!
//! CAN inserts a stuff bit after every five consecutive equal bits in
//! the stuff-exposed region (SOF through CRC). The worst case adds one
//! stuff bit per four original bits: `⌊(g − 1) / 4⌋` stuff bits over the
//! `g` exposed bits. For a standard (11-bit identifier) frame with `s`
//! data bytes this yields the textbook maximum of `55 + 10·s` bits
//! including the 3-bit interframe space; an extended (29-bit) frame
//! maxes out at `80 + 10·s` bits.

use carta_core::time::Time;
use std::fmt;

/// Number of data bytes in a CAN frame (0–8 for classic CAN, up to 64
/// on the CAN FD step table via [`Dlc::fd`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dlc(u8);

impl Dlc {
    /// Creates a data length code.
    ///
    /// # Panics
    ///
    /// Panics if `bytes > 8` (classic CAN payload limit). Payloads up
    /// to 64 bytes are available through [`Dlc::fd`] on networks with
    /// a CAN FD backend.
    pub fn new(bytes: u8) -> Self {
        assert!(bytes <= 8, "classic CAN carries at most 8 data bytes");
        Dlc(bytes)
    }

    /// Creates a CAN FD data length code, rounding `bytes` *up* to the
    /// wire payload step table (`0..=8, 12, 16, 20, 24, 32, 48, 64`) —
    /// the bytes between steps are padding on the wire either way.
    ///
    /// # Panics
    ///
    /// Panics if `bytes > 64` (the CAN FD payload limit).
    pub fn fd(bytes: u8) -> Self {
        Dlc(crate::backend::fd_wire_payload(bytes))
    }

    /// Payload size in bytes.
    pub fn bytes(self) -> u8 {
        self.0
    }

    /// Payload size in bits.
    pub fn bits(self) -> u64 {
        u64::from(self.0) * 8
    }
}

impl fmt::Display for Dlc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

/// Identifier format of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrameKind {
    /// 11-bit identifier (CAN 2.0A).
    #[default]
    Standard,
    /// 29-bit identifier (CAN 2.0B).
    Extended,
}

impl FrameKind {
    /// Un-stuffed frame length in bits for `dlc` data bytes, including
    /// the 3-bit interframe space.
    ///
    /// Standard: 47 + 8·s. Extended: 67 + 8·s.
    pub fn base_bits(self, dlc: Dlc) -> u64 {
        match self {
            FrameKind::Standard => 47 + dlc.bits(),
            FrameKind::Extended => 67 + dlc.bits(),
        }
    }

    /// Number of stuff-exposed bits (SOF through CRC sequence).
    ///
    /// Standard: 34 + 8·s. Extended: 54 + 8·s.
    pub fn stuffable_bits(self, dlc: Dlc) -> u64 {
        match self {
            FrameKind::Standard => 34 + dlc.bits(),
            FrameKind::Extended => 54 + dlc.bits(),
        }
    }

    /// Worst-case number of stuff bits: `⌊(g − 1) / 4⌋`.
    pub fn max_stuff_bits(self, dlc: Dlc) -> u64 {
        (self.stuffable_bits(dlc) - 1) / 4
    }

    /// Worst-case frame length in bits (base + maximum stuffing).
    ///
    /// ```
    /// use carta_can::frame::{Dlc, FrameKind};
    /// // The classic 135-bit worst case of an 8-byte standard frame:
    /// assert_eq!(FrameKind::Standard.max_bits(Dlc::new(8)), 135);
    /// assert_eq!(FrameKind::Extended.max_bits(Dlc::new(8)), 160);
    /// ```
    pub fn max_bits(self, dlc: Dlc) -> u64 {
        self.base_bits(dlc) + self.max_stuff_bits(dlc)
    }

    /// Best-case frame length in bits (no stuff bits at all).
    pub fn min_bits(self, dlc: Dlc) -> u64 {
        self.base_bits(dlc)
    }
}

/// Whether worst-case bit stuffing is accounted for.
///
/// The paper's Figure 5 "worst case" curve includes bit stuffing; the
/// "best case" curve does not, so both are first-class options here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StuffingMode {
    /// Assume the maximum number of stuff bits in every frame.
    #[default]
    WorstCase,
    /// Ignore stuff bits (optimistic, as in the paper's best case).
    None,
}

/// Worst-case transmission time of a frame under `mode` on a bus of
/// `bit_rate` bits/s.
///
/// # Panics
///
/// Panics if `bit_rate` is zero.
pub fn transmission_time(kind: FrameKind, dlc: Dlc, mode: StuffingMode, bit_rate: u64) -> Time {
    let bits = match mode {
        StuffingMode::WorstCase => kind.max_bits(dlc),
        StuffingMode::None => kind.min_bits(dlc),
    };
    Time::from_bits(bits, bit_rate)
}

/// Best-case transmission time (no stuffing) of a frame.
///
/// # Panics
///
/// Panics if `bit_rate` is zero.
pub fn min_transmission_time(kind: FrameKind, dlc: Dlc, bit_rate: u64) -> Time {
    Time::from_bits(kind.min_bits(dlc), bit_rate)
}

/// Duration of a single bit time.
///
/// # Panics
///
/// Panics if `bit_rate` is zero.
pub fn bit_time(bit_rate: u64) -> Time {
    Time::from_bits(1, bit_rate)
}

/// Maximum length of the error frame and recovery overhead in bits
/// (error flag + superposition + delimiter + interframe), per the CAN
/// error analysis literature (Tindell & Burns use 31 bits, adopted
/// unchanged).
pub const ERROR_FRAME_BITS: u64 = 31;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_frame_lengths() {
        for s in 0..=8u8 {
            let dlc = Dlc::new(s);
            assert_eq!(
                FrameKind::Standard.max_bits(dlc),
                55 + 10 * u64::from(s),
                "standard {s}-byte worst case"
            );
            assert_eq!(
                FrameKind::Extended.max_bits(dlc),
                80 + 10 * u64::from(s),
                "extended {s}-byte worst case"
            );
            assert_eq!(FrameKind::Standard.min_bits(dlc), 47 + 8 * u64::from(s));
            assert_eq!(FrameKind::Extended.min_bits(dlc), 67 + 8 * u64::from(s));
        }
    }

    #[test]
    fn stuffing_never_reduces_length() {
        for s in 0..=8u8 {
            let dlc = Dlc::new(s);
            for kind in [FrameKind::Standard, FrameKind::Extended] {
                assert!(kind.max_bits(dlc) > kind.min_bits(dlc));
                assert!(kind.max_stuff_bits(dlc) <= kind.stuffable_bits(dlc) / 4);
            }
        }
    }

    #[test]
    fn transmission_times_at_500k() {
        // 135 bits at 500 kbit/s = 270 us.
        let t = transmission_time(
            FrameKind::Standard,
            Dlc::new(8),
            StuffingMode::WorstCase,
            500_000,
        );
        assert_eq!(t, Time::from_us(270));
        // Without stuffing: 111 bits = 222 us.
        let t = transmission_time(
            FrameKind::Standard,
            Dlc::new(8),
            StuffingMode::None,
            500_000,
        );
        assert_eq!(t, Time::from_us(222));
        assert_eq!(bit_time(500_000), Time::from_us(2));
    }

    #[test]
    #[should_panic(expected = "at most 8 data bytes")]
    fn dlc_rejects_over_eight() {
        let _ = Dlc::new(9);
    }

    #[test]
    fn dlc_accessors() {
        let d = Dlc::new(5);
        assert_eq!(d.bytes(), 5);
        assert_eq!(d.bits(), 40);
        assert_eq!(d.to_string(), "5B");
    }

    #[test]
    fn fd_dlc_rounds_to_steps() {
        assert_eq!(Dlc::fd(8), Dlc::new(8));
        assert_eq!(Dlc::fd(9).bytes(), 12);
        assert_eq!(Dlc::fd(64).bytes(), 64);
        assert_eq!(Dlc::fd(64).bits(), 512);
    }

    #[test]
    #[should_panic(expected = "at most 64 data bytes")]
    fn fd_dlc_rejects_over_sixty_four() {
        let _ = Dlc::fd(65);
    }
}
