//! Pluggable bus transmission-time models ([`NetworkBackend`]).
//!
//! Classic CAN hard-wires one frame-length model (`55 + 10·s` bits and
//! friends, see [`crate::frame`]). Real vehicle networks are
//! heterogeneous, so everything downstream of the frame math — load,
//! RTA, the compiled kernel, the simulator — goes through a backend
//! that answers one question: *how long does a frame of this kind and
//! payload occupy the bus?* The answer is phase-decomposed into
//! [`WireBits`]: a nominal-rate bit count (arbitration-phase fields)
//! and a data-rate bit count (zero for single-rate protocols), each as
//! a `[min, max]` range bracketing the dynamic stuffing.
//!
//! Two backends ship today:
//!
//! * [`ClassicCan`] — CAN 2.0A/B. Single bit rate, payloads to 8
//!   bytes; `wire_bits` reproduces [`FrameKind::max_bits`] /
//!   [`FrameKind::min_bits`] exactly, so analyses through the backend
//!   are bit-identical to the historical direct path.
//! * [`CanFd`] — CAN FD (ISO 11898-1:2015). Dual bit rate (the
//!   arbitration phase runs at the bus's nominal rate, the data phase
//!   `data_ratio`× faster), payloads to 64 bytes on the DLC step
//!   table, FD dynamic stuffing plus the fixed-stuff CRC-17/21 field.
//!
//! Both are priority-arbitrated and non-preemptive, so the busy-window
//! RTA in [`crate::rta`]/[`crate::compiled`] applies unchanged; a
//! backend only reshapes the `C` vectors, the blocking term and the
//! per-hit error cost. A future preemptive backend (TSN Ethernet) will
//! need to generalize the solver itself — see DESIGN.md § 11 for the
//! contract a new backend must satisfy.

use crate::frame::{Dlc, FrameKind, StuffingMode, ERROR_FRAME_BITS};
use carta_core::time::Time;
use std::fmt;

/// Phase-decomposed wire length of one frame: bit counts transmitted
/// at the nominal (arbitration) rate and at the data-phase rate, each
/// as a `[min, max]` range over the dynamic stuffing outcomes.
///
/// Single-rate backends (classic CAN) put everything into the nominal
/// range and leave the data range at `0..0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WireBits {
    /// Fewest nominal-rate bits (no dynamic stuff bits).
    pub nominal_min: u64,
    /// Most nominal-rate bits (worst-case dynamic stuffing).
    pub nominal_max: u64,
    /// Fewest data-rate bits (zero for single-rate backends).
    pub data_min: u64,
    /// Most data-rate bits (zero for single-rate backends).
    pub data_max: u64,
}

impl WireBits {
    /// Bits of the worst-case frame under `mode`, per phase:
    /// `(nominal, data)`.
    pub fn for_mode(&self, mode: StuffingMode) -> (u64, u64) {
        match mode {
            StuffingMode::WorstCase => (self.nominal_max, self.data_max),
            StuffingMode::None => (self.nominal_min, self.data_min),
        }
    }
}

/// A bus transmission-time model.
///
/// Implementations must be pure functions of their configuration: the
/// compiled kernel caches per-`(topology × backend config)` tables and
/// the engine keys its memo cache on a fingerprint that hashes the
/// backend, so two equal configs must answer identically forever.
///
/// The contract every backend satisfies (and every consumer may
/// assume):
///
/// 1. `wire_bits` ranges are well-formed: `min ≤ max` per phase, and
///    monotone in the payload (more bytes never shortens the frame).
/// 2. `data_rate(r) ≥ r` and both are zero only if `r` is zero — the
///    data phase never runs slower than arbitration.
/// 3. `error_frame_bits` are signalled at the *nominal* rate (error
///    flags are dominant-bit sequences subject to arbitration-phase
///    timing in both classic CAN and CAN FD).
/// 4. Arbitration is priority-based and non-preemptive: a started
///    frame completes (or is killed by an error), which is what the
///    busy-window recurrence with its blocking term models.
pub trait NetworkBackend {
    /// Stable, human-readable backend name (`"can"`, `"can-fd"`).
    fn name(&self) -> &'static str;

    /// Largest payload a frame may carry, in bytes.
    fn max_payload_bytes(&self) -> u8;

    /// Payload actually occupying the wire for a requested payload of
    /// `bytes` (CAN FD rounds up to the DLC step table; classic CAN is
    /// byte-granular).
    fn wire_payload(&self, bytes: u8) -> u8;

    /// Phase-decomposed wire length of a `kind` frame carrying `dlc`.
    fn wire_bits(&self, kind: FrameKind, dlc: Dlc) -> WireBits;

    /// Data-phase bit rate for a bus whose nominal (arbitration) rate
    /// is `nominal_rate` bits/s.
    fn data_rate(&self, nominal_rate: u64) -> u64;

    /// Bits of the error frame plus recovery overhead, signalled at
    /// the nominal rate.
    fn error_frame_bits(&self) -> u64 {
        ERROR_FRAME_BITS
    }
}

/// The classic CAN 2.0A/B backend: one bit rate, payloads to 8 bytes,
/// the textbook `⌊(g − 1)/4⌋` worst-case stuffing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClassicCan;

impl NetworkBackend for ClassicCan {
    fn name(&self) -> &'static str {
        "can"
    }

    fn max_payload_bytes(&self) -> u8 {
        8
    }

    fn wire_payload(&self, bytes: u8) -> u8 {
        bytes
    }

    fn wire_bits(&self, kind: FrameKind, dlc: Dlc) -> WireBits {
        WireBits {
            nominal_min: kind.min_bits(dlc),
            nominal_max: kind.max_bits(dlc),
            data_min: 0,
            data_max: 0,
        }
    }

    fn data_rate(&self, nominal_rate: u64) -> u64 {
        nominal_rate
    }
}

/// The CAN FD payload step table: every DLC value maps to one of these
/// wire payload sizes; requested payloads round *up* to the next step
/// (the gap is padding on the wire).
pub const FD_PAYLOAD_STEPS: [u8; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64];

/// The smallest FD payload step that fits `bytes`.
///
/// # Panics
///
/// Panics if `bytes > 64` (the CAN FD payload limit).
pub fn fd_wire_payload(bytes: u8) -> u8 {
    assert!(bytes <= 64, "CAN FD carries at most 64 data bytes");
    FD_PAYLOAD_STEPS
        .iter()
        .copied()
        .find(|&step| step >= bytes)
        // The assert above bounds `bytes` by the table's last entry.
        .unwrap_or(64)
}

/// The CAN FD backend (ISO 11898-1:2015): arbitration phase at the
/// bus's nominal rate, data phase `data_ratio`× faster, payloads to 64
/// bytes on [`FD_PAYLOAD_STEPS`].
///
/// Frame structure used for the bit counts (interframe space
/// included, `s` = wire payload bytes):
///
/// * Nominal phase, dynamically stuffed: SOF + identifier + RRS/SRR +
///   IDE + FDF + res + BRS = 17 bits (standard) / 36 bits (extended);
///   worst-case stuffing adds `⌊(17 − 1)/4⌋ = 4` / `⌊(36 − 1)/4⌋ = 8`.
/// * Nominal tail, never stuffed: CRC delimiter + ACK + ACK delimiter
///   + EOF + IFS = 13 bits.
/// * Data phase, dynamically stuffed: ESI + DLC + data = `5 + 8·s`
///   bits; worst case adds `⌊(5 + 8·s − 1)/4⌋ = 1 + 2·s`.
/// * Data-phase CRC field, *fixed*-stuffed (always present, so it
///   contributes to min and max alike): stuff-bit count + CRC + fixed
///   stuff bits = 4 + 17 + 6 = 27 bits for `s ≤ 16` (CRC-17), else
///   4 + 21 + 7 = 32 bits (CRC-21).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CanFd {
    /// Data-phase rate as an integer multiple of the nominal rate
    /// (typical buses run 2–8×; e.g. 500 kbit/s arbitration with a
    /// 2 Mbit/s data phase is a ratio of 4).
    pub data_ratio: u32,
}

impl CanFd {
    /// The common 4× data-phase ratio.
    pub const DEFAULT_DATA_RATIO: u32 = 4;

    /// Creates an FD backend with the given data-phase ratio.
    ///
    /// # Panics
    ///
    /// Panics if `data_ratio` is zero.
    pub fn new(data_ratio: u32) -> Self {
        assert!(data_ratio > 0, "FD data-phase ratio must be positive");
        CanFd { data_ratio }
    }
}

impl Default for CanFd {
    fn default() -> Self {
        CanFd {
            data_ratio: Self::DEFAULT_DATA_RATIO,
        }
    }
}

impl NetworkBackend for CanFd {
    fn name(&self) -> &'static str {
        "can-fd"
    }

    fn max_payload_bytes(&self) -> u8 {
        64
    }

    fn wire_payload(&self, bytes: u8) -> u8 {
        fd_wire_payload(bytes)
    }

    fn wire_bits(&self, kind: FrameKind, dlc: Dlc) -> WireBits {
        let s = u64::from(fd_wire_payload(dlc.bytes()));
        let (head, head_stuff) = match kind {
            FrameKind::Standard => (17, 4),
            FrameKind::Extended => (36, 8),
        };
        let tail = 13;
        let crc_field = if s <= 16 { 27 } else { 32 };
        let payload_field = 5 + 8 * s;
        WireBits {
            nominal_min: head + tail,
            nominal_max: head + head_stuff + tail,
            data_min: payload_field + crc_field,
            data_max: payload_field + (payload_field - 1) / 4 + crc_field,
        }
    }

    fn data_rate(&self, nominal_rate: u64) -> u64 {
        nominal_rate * u64::from(self.data_ratio)
    }
}

/// The backend configuration a [`crate::network::CanNetwork`] carries:
/// a closed, hashable enumeration of the shipped backends, dispatching
/// to the [`NetworkBackend`] implementations.
///
/// Kept as an enum (rather than a boxed trait object) so networks stay
/// `Clone + PartialEq + Hash` and the engine can fingerprint the
/// backend into its cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendConfig {
    /// Classic CAN 2.0A/B.
    #[default]
    Can,
    /// CAN FD with the given data-phase backend parameters.
    CanFd(CanFd),
}

impl BackendConfig {
    /// An FD config with the default 4× data-phase ratio.
    pub fn can_fd() -> Self {
        BackendConfig::CanFd(CanFd::default())
    }

    /// The trait object this config dispatches to.
    pub fn backend(&self) -> &dyn NetworkBackend {
        match self {
            BackendConfig::Can => &ClassicCan,
            BackendConfig::CanFd(fd) => fd,
        }
    }

    /// Parses a backend name as used by `carta --backend`.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "can" => Ok(BackendConfig::Can),
            "can-fd" | "canfd" | "fd" => Ok(BackendConfig::can_fd()),
            other => Err(format!(
                "unknown backend `{other}` (known backends: can, can-fd)"
            )),
        }
    }

    /// Worst-case transmission time of a `kind`/`dlc` frame on a bus
    /// with nominal rate `bit_rate`, under `mode`.
    ///
    /// # Panics
    ///
    /// Panics if `bit_rate` is zero.
    pub fn c_max(&self, kind: FrameKind, dlc: Dlc, mode: StuffingMode, bit_rate: u64) -> Time {
        let (nominal, data) = self.backend().wire_bits(kind, dlc).for_mode(mode);
        self.phase_time(nominal, data, bit_rate)
    }

    /// Best-case transmission time (no dynamic stuff bits).
    ///
    /// # Panics
    ///
    /// Panics if `bit_rate` is zero.
    pub fn c_min(&self, kind: FrameKind, dlc: Dlc, bit_rate: u64) -> Time {
        let bits = self.backend().wire_bits(kind, dlc);
        self.phase_time(bits.nominal_min, bits.data_min, bit_rate)
    }

    /// Combines per-phase bit counts into a transmission time.
    ///
    /// # Panics
    ///
    /// Panics if `bit_rate` is zero.
    pub fn phase_time(&self, nominal_bits: u64, data_bits: u64, bit_rate: u64) -> Time {
        let nominal = Time::from_bits(nominal_bits, bit_rate);
        if data_bits == 0 {
            // Single-rate path: bit-identical to the historical
            // `Time::from_bits(kind.max_bits(dlc), rate)` computation.
            nominal
        } else {
            nominal + Time::from_bits(data_bits, self.backend().data_rate(bit_rate))
        }
    }

    /// Nominal-rate-equivalent frame length in bits under `mode`:
    /// data-phase bits are scaled down by the data-rate ratio (rounded
    /// up). This is what the simple load model of the paper's
    /// Section 3.1 consumes.
    pub fn nominal_equivalent_bits(&self, kind: FrameKind, dlc: Dlc, mode: StuffingMode) -> u64 {
        let (nominal, data) = self.backend().wire_bits(kind, dlc).for_mode(mode);
        if data == 0 {
            nominal
        } else {
            let ratio = match self {
                BackendConfig::Can => 1,
                BackendConfig::CanFd(fd) => u64::from(fd.data_ratio),
            };
            nominal + data.div_ceil(ratio)
        }
    }
}

impl fmt::Display for BackendConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendConfig::Can => write!(f, "can"),
            BackendConfig::CanFd(fd) => write!(f, "can-fd(x{})", fd.data_ratio),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_backend_reproduces_frame_math_exactly() {
        for s in 0..=8u8 {
            let dlc = Dlc::new(s);
            for kind in [FrameKind::Standard, FrameKind::Extended] {
                let bits = ClassicCan.wire_bits(kind, dlc);
                assert_eq!(bits.nominal_max, kind.max_bits(dlc));
                assert_eq!(bits.nominal_min, kind.min_bits(dlc));
                assert_eq!((bits.data_min, bits.data_max), (0, 0));
            }
        }
        // And through the config's time computation: the 8-byte
        // standard frame at 500 kbit/s stays the pinned 270 µs.
        let c = BackendConfig::Can.c_max(
            FrameKind::Standard,
            Dlc::new(8),
            StuffingMode::WorstCase,
            500_000,
        );
        assert_eq!(c, Time::from_us(270));
        assert_eq!(
            BackendConfig::Can.c_min(FrameKind::Standard, Dlc::new(8), 500_000),
            Time::from_us(222)
        );
    }

    #[test]
    fn fd_step_table_rounds_up() {
        assert_eq!(fd_wire_payload(0), 0);
        assert_eq!(fd_wire_payload(8), 8);
        assert_eq!(fd_wire_payload(9), 12);
        assert_eq!(fd_wire_payload(13), 16);
        assert_eq!(fd_wire_payload(17), 20);
        assert_eq!(fd_wire_payload(33), 48);
        assert_eq!(fd_wire_payload(49), 64);
        assert_eq!(fd_wire_payload(64), 64);
        for step in FD_PAYLOAD_STEPS {
            assert_eq!(fd_wire_payload(step), step, "steps are fixed points");
        }
    }

    #[test]
    #[should_panic(expected = "at most 64 data bytes")]
    fn fd_step_rejects_over_sixty_four() {
        let _ = fd_wire_payload(65);
    }

    #[test]
    fn fd_bit_counts_match_closed_forms() {
        let fd = CanFd::default();
        for &s in FD_PAYLOAD_STEPS.iter() {
            let dlc = Dlc::fd(s);
            let s = u64::from(s);
            let std = fd.wire_bits(FrameKind::Standard, dlc);
            let ext = fd.wire_bits(FrameKind::Extended, dlc);
            // Nominal phase is payload-independent.
            assert_eq!((std.nominal_min, std.nominal_max), (30, 34));
            assert_eq!((ext.nominal_min, ext.nominal_max), (49, 57));
            // Data phase: 33 + 10·s (s ≤ 16) / 38 + 10·s worst case.
            let (dmax, dmin) = if s <= 16 {
                (33 + 10 * s, 32 + 8 * s)
            } else {
                (38 + 10 * s, 37 + 8 * s)
            };
            assert_eq!(std.data_max, dmax, "{s}-byte data-phase worst case");
            assert_eq!(std.data_min, dmin, "{s}-byte data-phase best case");
            // The data phase is identifier-format independent.
            assert_eq!((ext.data_min, ext.data_max), (std.data_min, std.data_max));
        }
    }

    #[test]
    fn fd_dominates_classic_per_frame_at_ratio_two_or_more() {
        // The per-frame fact behind the `fd-dominates-classic-at-same-
        // payload` law: at the same nominal rate, any data ratio ≥ 2
        // makes the FD frame no longer on the wire than the classic
        // frame of the same (≤ 8 byte) payload.
        for ratio in [2u32, 4, 8] {
            let fd = BackendConfig::CanFd(CanFd::new(ratio));
            for s in 0..=8u8 {
                let dlc = Dlc::new(s);
                for kind in [FrameKind::Standard, FrameKind::Extended] {
                    for rate in [125_000u64, 250_000, 500_000] {
                        let classic =
                            BackendConfig::Can.c_max(kind, dlc, StuffingMode::WorstCase, rate);
                        let fast = fd.c_max(kind, dlc, StuffingMode::WorstCase, rate);
                        assert!(
                            fast <= classic,
                            "FD x{ratio} {kind:?} {s}B at {rate}: {fast} > {classic}"
                        );
                        assert!(
                            fd.c_min(kind, dlc, rate) <= BackendConfig::Can.c_min(kind, dlc, rate)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fd_at_ratio_one_is_longer_than_classic() {
        // Sanity check of the ratio ≥ 2 precondition: a same-rate data
        // phase makes FD frames *longer* (FD protocol overhead).
        let fd = BackendConfig::CanFd(CanFd::new(1));
        let dlc = Dlc::new(8);
        let classic =
            BackendConfig::Can.c_max(FrameKind::Standard, dlc, StuffingMode::WorstCase, 500_000);
        let same_rate = fd.c_max(FrameKind::Standard, dlc, StuffingMode::WorstCase, 500_000);
        assert!(same_rate > classic);
    }

    #[test]
    fn backend_config_parses_and_displays() {
        assert_eq!(BackendConfig::parse("can"), Ok(BackendConfig::Can));
        assert_eq!(BackendConfig::parse("can-fd"), Ok(BackendConfig::can_fd()));
        assert_eq!(BackendConfig::parse("fd"), Ok(BackendConfig::can_fd()));
        assert!(BackendConfig::parse("flexray").is_err());
        assert_eq!(BackendConfig::Can.to_string(), "can");
        assert_eq!(BackendConfig::can_fd().to_string(), "can-fd(x4)");
        assert_eq!(BackendConfig::default(), BackendConfig::Can);
        assert_eq!(BackendConfig::Can.backend().name(), "can");
        assert_eq!(BackendConfig::can_fd().backend().name(), "can-fd");
    }

    #[test]
    fn nominal_equivalent_bits_scale_the_data_phase() {
        let dlc = Dlc::new(8);
        // Classic: identical to the frame math.
        assert_eq!(
            BackendConfig::Can.nominal_equivalent_bits(
                FrameKind::Standard,
                dlc,
                StuffingMode::WorstCase
            ),
            135
        );
        // FD x4: 34 nominal + ceil(113/4) data-equivalent = 63 bits.
        assert_eq!(
            BackendConfig::can_fd().nominal_equivalent_bits(
                FrameKind::Standard,
                dlc,
                StuffingMode::WorstCase
            ),
            34 + 29
        );
    }

    #[test]
    fn error_frame_cost_is_shared() {
        assert_eq!(ClassicCan.error_frame_bits(), ERROR_FRAME_BITS);
        assert_eq!(CanFd::default().error_frame_bits(), ERROR_FRAME_BITS);
    }

    #[test]
    fn data_rate_scales_by_ratio() {
        assert_eq!(ClassicCan.data_rate(500_000), 500_000);
        assert_eq!(CanFd::new(4).data_rate(500_000), 2_000_000);
        assert_eq!(CanFd::new(2).data_rate(125_000), 250_000);
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn zero_ratio_rejected() {
        let _ = CanFd::new(0);
    }
}
