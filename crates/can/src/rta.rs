//! Worst-case response-time analysis for CAN.
//!
//! The analysis follows Tindell & Burns (ref. \[7\] of the paper) in the
//! busy-window formulation with correct treatment of multiple instances
//! per busy period (the fix published by Davis et al. 2007), and is
//! generalized from pure periodic-with-jitter activation to arbitrary
//! standard event models via `η⁺`/`δ⁻` (Richter, ref. \[12\]):
//!
//! For message `m` and instance `q = 1, 2, …` the queuing delay is the
//! smallest solution of
//!
//! ```text
//! w = B_m + (q−1)·C_m + E(w + C_m) + Σ_{j ∈ hp(m)} η⁺_j(w + τ_bit)·C_j
//! ```
//!
//! where `B_m` is the non-preemption blocking (plus controller-specific
//! local blocking), `E` the error overhead and `τ_bit` one bit time.
//! The instance's response time is `R_q = w_q + C_m − δ⁻_m(q)` and the
//! busy period extends to instance `q+1` while `w_q + C_m > δ⁻_m(q+1)`.

use crate::backend::BackendConfig;
use crate::compiled::{CompiledBus, RtaWorkspace};
use crate::controller::ControllerType;
use crate::error_model::ErrorModel;
use crate::frame::StuffingMode;
use crate::message::CanId;
use crate::network::CanNetwork;
use carta_core::analysis::{AnalysisError, MessageDiagnostic, ResponseBounds};
use carta_core::time::Time;
use carta_obs::metrics::{self, Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Pre-resolved global-registry handles for the RTA hot path. Resolved
/// once; recording happens only while [`metrics::enabled`], so the
/// disabled cost per `analyze_bus` run is one relaxed atomic load.
pub(crate) struct RtaMetrics {
    pub(crate) runs: Arc<Counter>,
    pub(crate) messages: Arc<Counter>,
    pub(crate) iterations: Arc<Counter>,
    pub(crate) busy_instances: Arc<Histogram>,
    pub(crate) incremental_runs: Arc<Counter>,
    pub(crate) incremental_reused: Arc<Counter>,
    pub(crate) incremental_recomputed: Arc<Counter>,
    pub(crate) diverged: Arc<Counter>,
}

pub(crate) fn rta_metrics() -> &'static RtaMetrics {
    static HANDLES: OnceLock<RtaMetrics> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let registry = metrics::global();
        RtaMetrics {
            runs: registry.counter("rta.runs"),
            messages: registry.counter("rta.messages"),
            iterations: registry.counter("rta.iterations"),
            busy_instances: registry.histogram("rta.busy_instances"),
            incremental_runs: registry.counter("rta.incremental.runs"),
            incremental_reused: registry.counter("rta.incremental.reused"),
            incremental_recomputed: registry.counter("rta.incremental.recomputed"),
            diverged: registry.counter("rta.diverged"),
        }
    })
}

/// Tuning knobs of the analysis.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisConfig {
    /// Bit-stuffing assumption for worst-case frame lengths.
    pub stuffing: StuffingMode,
    /// Busy windows growing beyond this horizon are declared unbounded.
    pub horizon: Time,
    /// Maximum number of instances examined per busy period.
    pub max_instances: u64,
    /// Divergence budget: fixpoint iterations allowed per message
    /// before its busy window is abandoned with
    /// [`carta_core::analysis::DivergenceCause::IterationBudget`].
    /// Deliberately an iteration (not wall-clock) budget so the abort
    /// point — and with it every report — stays deterministic and
    /// cache-coherent; wall budgets exist one level up, on the global
    /// fixpoint ([`carta_core::comp::CompositionalSystem::with_wall_budget`]).
    pub max_iterations: u64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            stuffing: StuffingMode::WorstCase,
            horizon: Time::from_s(10),
            max_instances: 4096,
            max_iterations: 1_000_000,
        }
    }
}

impl AnalysisConfig {
    /// Default configuration with the given stuffing mode.
    pub fn with_stuffing(stuffing: StuffingMode) -> Self {
        AnalysisConfig {
            stuffing,
            ..Self::default()
        }
    }
}

/// The analysis verdict for one message.
///
/// Degraded mode: divergence is diagnosed per message, never escalated
/// to a whole-report failure — an overloaded priority level carries a
/// [`MessageDiagnostic`] (priority level, busy-window length at abort,
/// the interference set that overloaded it) while every lower-impact
/// message keeps its sound bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseOutcome {
    /// The message has bounded best/worst-case response times.
    Bounded(ResponseBounds),
    /// No bound exists (its priority level is overloaded, or a
    /// divergence budget ran out first); the diagnostic says why.
    Overload(MessageDiagnostic),
}

impl ResponseOutcome {
    /// Worst-case response time, if bounded.
    pub fn wcrt(&self) -> Option<Time> {
        match self {
            ResponseOutcome::Bounded(b) => Some(b.worst()),
            ResponseOutcome::Overload(_) => None,
        }
    }

    /// Best-case response time, if bounded.
    pub fn bcrt(&self) -> Option<Time> {
        match self {
            ResponseOutcome::Bounded(b) => Some(b.best()),
            ResponseOutcome::Overload(_) => None,
        }
    }

    /// The verdict as a `Result`: sound bounds, or the divergence
    /// diagnostic of the abandoned fixpoint.
    pub fn as_result(&self) -> Result<ResponseBounds, &MessageDiagnostic> {
        match self {
            ResponseOutcome::Bounded(b) => Ok(*b),
            ResponseOutcome::Overload(d) => Err(d),
        }
    }

    /// The divergence diagnostic, when the message has no bounds.
    pub fn diagnostic(&self) -> Option<&MessageDiagnostic> {
        match self {
            ResponseOutcome::Bounded(_) => None,
            ResponseOutcome::Overload(d) => Some(d),
        }
    }
}

/// Per-message analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageReport {
    /// Index of the message in the network's message list.
    pub index: usize,
    /// Message name, interned per [`crate::compiled::CompiledBus`]:
    /// every report produced from the same compiled tables shares one
    /// allocation per name.
    pub name: Arc<str>,
    /// CAN identifier.
    pub id: CanId,
    /// Worst-case transmission time (stuffing per config).
    pub c_max: Time,
    /// Best-case transmission time (no stuff bits).
    pub c_min: Time,
    /// Total blocking (non-preemption + controller-local).
    pub blocking: Time,
    /// Resolved deadline.
    pub deadline: Time,
    /// Response-time verdict.
    pub outcome: ResponseOutcome,
    /// Number of instances in the longest level-`m` busy period
    /// (0 when overloaded).
    pub instances: u64,
}

impl MessageReport {
    /// `true` if the message can miss its deadline (and thus be lost by
    /// buffer overwrite, in the paper's terms). Overloaded messages
    /// count as lost.
    pub fn misses_deadline(&self) -> bool {
        match self.outcome.wcrt() {
            Some(wcrt) => wcrt > self.deadline,
            None => true,
        }
    }

    /// Slack until the deadline (`None` when overloaded or missing).
    pub fn slack(&self) -> Option<Time> {
        self.outcome
            .wcrt()
            .filter(|w| *w <= self.deadline)
            .map(|w| self.deadline - w)
    }

    /// The per-message verdict as a `Result` (see
    /// [`ResponseOutcome::as_result`]).
    pub fn response(&self) -> Result<ResponseBounds, &MessageDiagnostic> {
        self.outcome.as_result()
    }
}

/// The full bus analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusReport {
    /// Per-message reports, in network message order.
    pub messages: Vec<MessageReport>,
    /// Description of the error model used.
    pub error_model: String,
    /// Stuffing mode used.
    pub stuffing: StuffingMode,
    /// Bus backend the transmission times were derived from.
    pub backend: BackendConfig,
}

impl BusReport {
    /// `true` if every message meets its deadline.
    pub fn schedulable(&self) -> bool {
        self.messages.iter().all(|m| !m.misses_deadline())
    }

    /// Number of messages that can miss their deadline.
    pub fn missed_count(&self) -> usize {
        self.messages.iter().filter(|m| m.misses_deadline()).count()
    }

    /// Fraction of messages that can miss their deadline — the y-axis
    /// of the paper's Figure 5.
    pub fn miss_fraction(&self) -> f64 {
        if self.messages.is_empty() {
            0.0
        } else {
            self.missed_count() as f64 / self.messages.len() as f64
        }
    }

    /// Looks a report up by message name.
    pub fn by_name(&self, name: &str) -> Option<&MessageReport> {
        self.messages.iter().find(|m| &*m.name == name)
    }

    /// The largest worst-case response time on the bus, if all bounded.
    pub fn max_wcrt(&self) -> Option<Time> {
        self.messages
            .iter()
            .map(|m| m.outcome.wcrt())
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(Time::ZERO))
    }

    /// `true` if at least one message carries a divergence diagnostic
    /// instead of bounds (a *degraded* report: the remaining bounds are
    /// still sound).
    pub fn is_degraded(&self) -> bool {
        self.messages
            .iter()
            .any(|m| m.outcome.diagnostic().is_some())
    }

    /// The divergence diagnostics of this report, in message order.
    pub fn diagnostics(&self) -> impl Iterator<Item = &MessageDiagnostic> {
        self.messages.iter().filter_map(|m| m.outcome.diagnostic())
    }
}

/// Analyzes every message on the bus.
///
/// Shorthand for compiling the topology ([`CompiledBus::compile`]) and
/// solving once with a fresh [`RtaWorkspace`]. Callers that analyze
/// many variants of one topology should hold on to the compiled tables
/// and a workspace instead — that skips the per-call table derivation
/// and warm-starts the busy-window fixpoints (see [`crate::compiled`]).
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidModel`] if the network fails
/// [`CanNetwork::validate`]. Per-message overload is *not* an error; it
/// is reported as [`ResponseOutcome::Overload`] so that loss statistics
/// can be computed for overloaded what-if scenarios.
///
/// # Examples
///
/// ```
/// use carta_can::prelude::*;
/// use carta_core::time::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = CanNetwork::new(500_000);
/// let ecu = net.add_node(Node::new("EMS", ControllerType::FullCan));
/// net.add_message(CanMessage::new(
///     "engine_rpm", CanId::standard(0x100)?, Dlc::new(8),
///     Time::from_ms(10), Time::ZERO, ecu,
/// ));
/// let report = analyze_bus(&net, &NoErrors, &AnalysisConfig::default())?;
/// // A lone 8-byte frame at 500 kbit/s: 135 bits = 270 us.
/// assert_eq!(report.messages[0].outcome.wcrt(), Some(Time::from_us(270)));
/// # Ok(())
/// # }
/// ```
pub fn analyze_bus(
    net: &CanNetwork,
    errors: &dyn ErrorModel,
    config: &AnalysisConfig,
) -> Result<BusReport, AnalysisError> {
    let compiled = CompiledBus::compile(net, config.stuffing)?;
    Ok(compiled.solve(net, errors, config, &mut RtaWorkspace::new()))
}

/// The higher-priority index set of every message: `result[i]` holds
/// the indices of all messages that out-arbitrate message `i`, in
/// ascending index order.
///
/// [`wcrt_for_sets`] depends only on these *sets* (never on identifier
/// values beyond them, except through transmission times), which is
/// what makes [`analyze_bus_incremental`] sound.
pub fn hp_index_sets(net: &CanNetwork) -> Vec<Vec<usize>> {
    let msgs = net.messages();
    (0..msgs.len())
        .map(|i| {
            let key = msgs[i].id.arbitration_key();
            (0..msgs.len())
                .filter(|&j| msgs[j].id.arbitration_key() < key)
                .collect()
        })
        .collect()
}

/// Work accounting of one [`analyze_bus_incremental`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Messages whose verdict was carried over from the previous report.
    pub reused: usize,
    /// Messages whose busy-window iteration had to be re-run.
    pub recomputed: usize,
}

/// Priority-aware incremental re-analysis.
///
/// `net` must differ from the previously analyzed network **only in its
/// identifier assignment** (same messages in the same order, same
/// activations, deadline policies, senders and controllers — exactly
/// what an identifier-permutation overlay produces). `previous` is that
/// network's report and `previous_hp` its [`hp_index_sets`]. Messages
/// whose higher-priority index set is unchanged keep their response
/// verdict without re-running the busy-window iteration; only the
/// affected messages are recomputed.
///
/// The function independently verifies everything it can observe
/// (message count, names, transmission-time vectors, deadlines, error
/// model and stuffing mode) and falls back to a full [`analyze_bus`]
/// run when the reports are not comparable, so a contract violation
/// degrades performance, not correctness — except for activation
/// changes, which are invisible in a [`BusReport`] and remain the
/// caller's responsibility.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidModel`] if the network fails
/// [`CanNetwork::validate`].
pub fn analyze_bus_incremental(
    net: &CanNetwork,
    errors: &dyn ErrorModel,
    config: &AnalysisConfig,
    previous: &BusReport,
    previous_hp: &[Vec<usize>],
) -> Result<(BusReport, IncrementalStats), AnalysisError> {
    let compiled = CompiledBus::compile(net, config.stuffing)?;
    Ok(compiled.solve_incremental(net, errors, config, previous, previous_hp))
}

/// Fault-injection hooks for verification tooling.
///
/// `carta-testkit` proves its differential oracle can actually catch a
/// broken analysis by flipping these switches, running the fuzz loop,
/// and asserting a violation is found and shrunk. They are process-wide
/// and **must never be enabled outside such a self-test**.
#[doc(hidden)]
pub mod test_mutations {
    use std::sync::atomic::{AtomicBool, Ordering};

    static DROP_BLOCKING: AtomicBool = AtomicBool::new(false);

    /// When enabled, the analysis unsoundly drops the blocking term.
    pub fn set_drop_blocking(enabled: bool) {
        DROP_BLOCKING.store(enabled, Ordering::SeqCst);
    }

    pub(crate) fn drop_blocking() -> bool {
        DROP_BLOCKING.load(Ordering::SeqCst)
    }
}

/// The total blocking charged to message `i`: for fullCAN senders, one
/// lower-priority frame of bus blocking plus nothing local; for
/// basicCAN/FIFO senders, the local queue-ahead frames (other-node
/// lower-priority traffic is charged as interference instead — its one
/// just-started frame is subsumed by `η⁺ ≥ 1`).
pub(crate) fn effective_blocking(net: &CanNetwork, i: usize, c_max: &[Time], lp: &[usize]) -> Time {
    if test_mutations::drop_blocking() {
        return Time::ZERO;
    }
    blocking_for(net, i, c_max, lp)
}

/// [`effective_blocking`] without the fault-injection hook — the pure
/// term [`crate::compiled::CompiledBus`] precompiles (the hook is
/// re-checked at solve time so compiled tables stay hook-agnostic).
pub(crate) fn blocking_for(net: &CanNetwork, i: usize, c_max: &[Time], lp: &[usize]) -> Time {
    let m = &net.messages()[i];
    let bus_blocking = match net.controller_of(m) {
        ControllerType::FullCan => lp.iter().map(|&j| c_max[j]).max().unwrap_or(Time::ZERO),
        ControllerType::BasicCan | ControllerType::FifoQueue { .. } => Time::ZERO,
    };
    bus_blocking + controller_blocking(net, i, c_max, lp)
}

/// Controller-specific local blocking of message `i` by its own node's
/// other messages (see [`ControllerType`]), given the explicit set of
/// lower-priority message indices.
fn controller_blocking(net: &CanNetwork, i: usize, c_max: &[Time], lp: &[usize]) -> Time {
    let msgs = net.messages();
    let m = &msgs[i];
    match net.controller_of(m) {
        ControllerType::FullCan => Time::ZERO,
        ControllerType::BasicCan => lp
            .iter()
            .filter(|&&j| msgs[j].sender == m.sender)
            .map(|&j| c_max[j])
            .max()
            .unwrap_or(Time::ZERO),
        ControllerType::FifoQueue { depth } => {
            let mut same: Vec<Time> = msgs
                .iter()
                .enumerate()
                .filter(|(j, other)| *j != i && other.sender == m.sender)
                .map(|(j, _)| c_max[j])
                .collect();
            same.sort_unstable_by(|a, b| b.cmp(a));
            same.into_iter().take(depth.saturating_sub(1)).sum()
        }
    }
}

/// Computes the response outcome of message `i` given explicit
/// higher-/lower-priority index sets. The result depends only on the
/// *sets* (never on the order within them), which is exactly the
/// property Audsley's optimal priority assignment requires — see
/// [`crate::opa`].
///
/// Controller handling: for a fullCAN sender, lower-priority traffic
/// contributes one frame of non-preemption blocking. For basicCAN and
/// FIFO senders, the unrevokable local frame ahead of `i` can lose
/// arbitration *repeatedly* against other nodes' frames of any
/// priority, so **all** other-node messages are counted as full
/// interference (sound, conservative), while same-node frames ahead of
/// `i` appear as controller blocking.
#[allow(clippy::too_many_arguments)]
pub(crate) fn wcrt_for_sets(
    net: &CanNetwork,
    c_max: &[Time],
    i: usize,
    hp: &[usize],
    lp: &[usize],
    tau: Time,
    errors: &dyn ErrorModel,
    config: &AnalysisConfig,
    iterations: &mut u64,
) -> Result<(Time, u64), crate::compiled::BusyAbort> {
    let rate = net.bit_rate();
    let msgs = net.messages();
    let m = &msgs[i];
    let interference: Vec<usize> = match net.controller_of(m) {
        ControllerType::FullCan => hp.to_vec(),
        ControllerType::BasicCan | ControllerType::FifoQueue { .. } => {
            let mut set = hp.to_vec();
            set.extend(lp.iter().copied().filter(|&j| msgs[j].sender != m.sender));
            set
        }
    };
    let blocking = effective_blocking(net, i, c_max, lp);
    // Error overhead per hit: error frame + retransmission of the
    // longest frame that may need resending while `i` waits.
    let retx = interference
        .iter()
        .map(|&j| c_max[j])
        .max()
        .unwrap_or(c_max[i])
        .max(c_max[i]);
    let per_hit = Time::from_bits(net.backend().backend().error_frame_bits(), rate) + retx;
    let activations: Vec<carta_core::event_model::EventModel> =
        msgs.iter().map(|m| m.activation).collect();
    crate::compiled::busy_window(
        &activations,
        i,
        &interference,
        c_max,
        blocking,
        tau,
        errors,
        per_hit,
        config,
        &[],
        &mut Vec::new(),
        iterations,
    )
}

/// Worst-case transmission times of all messages under `stuffing`,
/// derived from the network's bus backend.
pub(crate) fn c_max_vector(net: &CanNetwork, stuffing: StuffingMode) -> Vec<Time> {
    let rate = net.bit_rate();
    let backend = net.backend();
    net.messages()
        .iter()
        .map(|m| backend.c_max(m.id.kind(), m.dlc, stuffing, rate))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::{BurstErrors, NoErrors, SporadicErrors};
    use crate::frame::Dlc;
    use crate::message::{CanMessage, DeadlinePolicy};
    use crate::network::Node;
    use carta_core::event_model::EventModel;

    fn net_with(messages: Vec<CanMessage>) -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        net.add_node(Node::new("A", ControllerType::FullCan));
        net.add_node(Node::new("B", ControllerType::FullCan));
        for m in messages {
            net.add_message(m);
        }
        net
    }

    fn msg(
        name: &str,
        id: u32,
        dlc: u8,
        period_ms: u64,
        jitter_ms: u64,
        sender: usize,
    ) -> CanMessage {
        CanMessage::new(
            name,
            CanId::standard(id).expect("valid id"),
            Dlc::new(dlc),
            Time::from_ms(period_ms),
            Time::from_ms(jitter_ms),
            sender,
        )
    }

    #[test]
    fn lone_message_wcrt_is_transmission_time() {
        let net = net_with(vec![msg("a", 0x100, 8, 10, 0, 0)]);
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let m = &rep.messages[0];
        assert_eq!(m.outcome.wcrt(), Some(Time::from_us(270)));
        assert_eq!(m.outcome.bcrt(), Some(Time::from_us(222)));
        assert_eq!(m.blocking, Time::ZERO);
        assert_eq!(m.instances, 1);
        assert!(rep.schedulable());
        assert_eq!(rep.miss_fraction(), 0.0);
    }

    #[test]
    fn fd_backend_shortens_the_data_phase() {
        let mut net = net_with(vec![msg("a", 0x100, 8, 10, 0, 0)]);
        net.set_backend(BackendConfig::can_fd());
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let m = &rep.messages[0];
        // Nominal phase 34 bits at 500 kbit/s = 68 us; data phase
        // 33 + 10·8 = 113 bits at 2 Mbit/s = 56.5 us.
        assert_eq!(m.outcome.wcrt(), Some(Time::from_ns(124_500)));
        // Best case: 30 nominal bits (60 us) + 96 data bits (48 us).
        assert_eq!(m.outcome.bcrt(), Some(Time::from_ns(108_000)));
        assert_eq!(rep.backend, BackendConfig::can_fd());
        assert!(rep.schedulable());
    }

    #[test]
    fn fd_sixty_four_byte_frames_are_bounded() {
        let mut net = net_with(vec![CanMessage::new(
            "bulk",
            CanId::standard(0x100).expect("valid id"),
            Dlc::fd(64),
            Time::from_ms(10),
            Time::ZERO,
            0,
        )]);
        net.set_backend(BackendConfig::can_fd());
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let m = &rep.messages[0];
        // 34 nominal bits (68 us) + 38 + 10·64 = 678 data bits with
        // CRC-21 at 2 Mbit/s (339 us).
        assert_eq!(m.outcome.wcrt(), Some(Time::from_ns(407_000)));
        assert!(rep.schedulable());
    }

    #[test]
    fn low_priority_suffers_interference() {
        let net = net_with(vec![
            msg("hi", 0x100, 8, 10, 0, 0),
            msg("lo", 0x200, 8, 10, 0, 1),
        ]);
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        // lo waits for one hi frame then transmits: 270 + 270 us.
        assert_eq!(
            rep.by_name("lo").unwrap().outcome.wcrt(),
            Some(Time::from_us(540))
        );
        // hi is blocked by one just-started lo frame.
        assert_eq!(rep.by_name("hi").unwrap().blocking, Time::from_us(270));
        assert_eq!(
            rep.by_name("hi").unwrap().outcome.wcrt(),
            Some(Time::from_us(540))
        );
    }

    #[test]
    fn smaller_frames_block_less() {
        let net = net_with(vec![
            msg("hi", 0x100, 8, 10, 0, 0),
            msg("lo", 0x200, 1, 10, 0, 1), // 65-bit worst case = 130 us
        ]);
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        assert_eq!(rep.by_name("hi").unwrap().blocking, Time::from_us(130));
        assert_eq!(
            rep.by_name("hi").unwrap().outcome.wcrt(),
            Some(Time::from_us(400))
        );
    }

    #[test]
    fn sporadic_error_adds_one_retransmission() {
        let net = net_with(vec![msg("a", 0x100, 8, 10, 0, 0)]);
        // One error may always strike during the transmission.
        let errors = SporadicErrors::new(Time::from_s(1));
        let rep = analyze_bus(&net, &errors, &AnalysisConfig::default()).expect("valid");
        // 31 bits error frame (62 us) + retransmission (270) + own (270).
        assert_eq!(
            rep.messages[0].outcome.wcrt(),
            Some(Time::from_us(270 + 62 + 270))
        );
    }

    #[test]
    fn burst_errors_hit_harder_than_sporadic_at_same_rate() {
        let mk = || {
            net_with(vec![
                msg("a", 0x100, 8, 5, 0, 0),
                msg("b", 0x200, 8, 5, 0, 1),
            ])
        };
        let sp = analyze_bus(
            &mk(),
            &SporadicErrors::new(Time::from_ms(10)),
            &AnalysisConfig::default(),
        )
        .expect("valid");
        let bu = analyze_bus(
            &mk(),
            &BurstErrors::new(3, Time::from_us(150), Time::from_ms(30)),
            &AnalysisConfig::default(),
        )
        .expect("valid");
        let wb = bu.by_name("b").unwrap().outcome.wcrt().expect("bounded");
        let ws = sp.by_name("b").unwrap().outcome.wcrt().expect("bounded");
        assert!(wb > ws, "burst {wb} should exceed sporadic {ws}");
    }

    #[test]
    fn overload_detected() {
        // 135 bits every 200 us on a 500 kbit/s bus: 135 % utilization.
        let net = net_with(vec![
            CanMessage::new(
                "flood",
                CanId::standard(0x100).expect("valid"),
                Dlc::new(8),
                Time::from_us(200),
                Time::ZERO,
                0,
            ),
            msg("victim", 0x200, 8, 10, 0, 1),
        ]);
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let victim = rep.by_name("victim").unwrap();
        assert!(matches!(victim.outcome, ResponseOutcome::Overload(_)));
        assert!(victim.misses_deadline());
        assert!(!rep.schedulable());
        assert!(rep.max_wcrt().is_none());
        assert!(rep.is_degraded());
        // The flooding message alone exceeds the bus bandwidth (135 %),
        // so even the top priority has no bound.
        let flood = rep.by_name("flood").unwrap();
        assert!(matches!(flood.outcome, ResponseOutcome::Overload(_)));
        // Degraded-mode diagnostics: the victim names its interference
        // set and abort state, the flood has nothing above it.
        let diag = victim.outcome.diagnostic().expect("diagnosed");
        assert_eq!(&*diag.entity, "victim");
        assert_eq!(diag.priority_level, 1);
        assert_eq!(diag.interference, vec![Arc::<str>::from("flood")]);
        assert!(diag.instances >= 1);
        assert!(diag.busy_window > Time::ZERO);
        assert_eq!(
            diag.cause,
            carta_core::analysis::DivergenceCause::HorizonExceeded {
                horizon: AnalysisConfig::default().horizon
            }
        );
        let fdiag = flood.outcome.diagnostic().expect("diagnosed");
        assert_eq!(fdiag.priority_level, 0);
        assert!(fdiag.interference.is_empty());
        assert_eq!(rep.diagnostics().count(), 2);
        assert!(victim.response().is_err());
    }

    #[test]
    fn jitter_tightens_deadline_and_raises_interference() {
        let base = net_with(vec![
            msg("hi", 0x100, 8, 1, 0, 0),
            msg("lo", 0x200, 8, 10, 0, 1),
        ]);
        let jittery = net_with(vec![
            CanMessage::new(
                "hi",
                CanId::standard(0x100).expect("valid"),
                Dlc::new(8),
                Time::from_ms(1),
                Time::from_us(800),
                0,
            ),
            msg("lo", 0x200, 8, 10, 0, 1),
        ]);
        let r0 = analyze_bus(&base, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let r1 = analyze_bus(&jittery, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let lo0 = r0.by_name("lo").unwrap().outcome.wcrt().expect("bounded");
        let lo1 = r1.by_name("lo").unwrap().outcome.wcrt().expect("bounded");
        // hi's jitter pulls a second hi frame into lo's busy window.
        assert_eq!(lo0, Time::from_us(540));
        assert_eq!(lo1, Time::from_us(810));
        // hi's own deadline shrinks to P - J = 200 us under MinReArrival.
        assert_eq!(r1.by_name("hi").unwrap().deadline, Time::from_us(200));
    }

    #[test]
    fn basic_can_adds_local_blocking() {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::BasicCan));
        let b = net.add_node(Node::new("B", ControllerType::FullCan));
        net.add_message(msg("hi", 0x100, 8, 10, 0, a));
        net.add_message(msg("mid", 0x180, 8, 10, 0, a));
        net.add_message(msg("other", 0x200, 8, 10, 0, b));
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        // hi: the unrevokable register frame of its own lower-priority
        // sibling (270); other-node lower traffic counts as repeatable
        // interference rather than one-shot blocking.
        assert_eq!(rep.by_name("hi").unwrap().blocking, Time::from_us(270));
        // WCRT: register frame + one `other` interference + own frame.
        assert_eq!(
            rep.by_name("hi").unwrap().outcome.wcrt(),
            Some(Time::from_us(810))
        );

        // Same net with fullCAN: only the bus blocking remains.
        let mut net2 = CanNetwork::new(500_000);
        let a2 = net2.add_node(Node::new("A", ControllerType::FullCan));
        let b2 = net2.add_node(Node::new("B", ControllerType::FullCan));
        net2.add_message(msg("hi", 0x100, 8, 10, 0, a2));
        net2.add_message(msg("mid", 0x180, 8, 10, 0, a2));
        net2.add_message(msg("other", 0x200, 8, 10, 0, b2));
        let rep2 = analyze_bus(&net2, &NoErrors, &AnalysisConfig::default()).expect("valid");
        assert_eq!(rep2.by_name("hi").unwrap().blocking, Time::from_us(270));
        // fullCAN avoids the priority inversion: one blocking frame and
        // straight to the bus.
        assert_eq!(
            rep2.by_name("hi").unwrap().outcome.wcrt(),
            Some(Time::from_us(540))
        );
    }

    #[test]
    fn fifo_queue_blocking_scales_with_depth() {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FifoQueue { depth: 3 }));
        net.add_node(Node::new("B", ControllerType::FullCan));
        net.add_message(msg("m1", 0x100, 8, 10, 0, a));
        net.add_message(msg("m2", 0x180, 8, 10, 0, a));
        net.add_message(msg("m3", 0x190, 8, 10, 0, a));
        net.add_message(msg("m4", 0x1A0, 8, 10, 0, a));
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        // m1: two same-node frames ahead in the FIFO (depth 3); there
        // is no other-node traffic to interfere.
        assert_eq!(rep.by_name("m1").unwrap().blocking, Time::from_us(270 * 2));
        assert_eq!(
            rep.by_name("m1").unwrap().outcome.wcrt(),
            Some(Time::from_us(270 * 3))
        );
    }

    #[test]
    fn stuffing_mode_changes_results() {
        let mk = || {
            net_with(vec![
                msg("a", 0x100, 8, 10, 0, 0),
                msg("b", 0x200, 8, 10, 0, 1),
            ])
        };
        let worst = analyze_bus(&mk(), &NoErrors, &AnalysisConfig::default()).expect("valid");
        let none = analyze_bus(
            &mk(),
            &NoErrors,
            &AnalysisConfig::with_stuffing(StuffingMode::None),
        )
        .expect("valid");
        assert!(
            worst.by_name("b").unwrap().outcome.wcrt() > none.by_name("b").unwrap().outcome.wcrt()
        );
    }

    #[test]
    fn burst_activation_models_are_supported() {
        // A high-priority sender that emits 4-frame bursts.
        let burst = CanMessage::new(
            "burst",
            CanId::standard(0x080).expect("valid"),
            Dlc::new(8),
            Time::from_ms(100),
            Time::ZERO,
            0,
        )
        .with_activation(EventModel::burst(
            Time::from_ms(100),
            4,
            Time::from_us(250), // denser than one frame time: full pile-up
        ))
        .with_deadline(DeadlinePolicy::Period);
        let net = net_with(vec![burst.clone(), msg("lo", 0x200, 8, 50, 0, 1)]);
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        // lo is delayed by all 4 burst frames: 4*270 + 270.
        assert_eq!(
            rep.by_name("lo").unwrap().outcome.wcrt(),
            Some(Time::from_us(4 * 270 + 270))
        );
        // With a 300 us intra-burst gap the 270 us victim frame slips
        // into the gap after the first burst frame: only one interferes.
        let sparse =
            burst.with_activation(EventModel::burst(Time::from_ms(100), 4, Time::from_us(300)));
        let net2 = net_with(vec![sparse, msg("lo", 0x200, 8, 50, 0, 1)]);
        let rep2 = analyze_bus(&net2, &NoErrors, &AnalysisConfig::default()).expect("valid");
        assert_eq!(
            rep2.by_name("lo").unwrap().outcome.wcrt(),
            Some(Time::from_us(270 + 270))
        );
    }

    #[test]
    fn invalid_network_is_an_error() {
        let net = CanNetwork::new(500_000);
        assert!(matches!(
            analyze_bus(&net, &NoErrors, &AnalysisConfig::default()),
            Err(AnalysisError::InvalidModel(_))
        ));
    }

    #[test]
    fn slack_reported_for_schedulable_messages() {
        let net = net_with(vec![msg("a", 0x100, 8, 10, 0, 0)]);
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let m = &rep.messages[0];
        assert_eq!(m.slack(), Some(Time::from_ms(10) - Time::from_us(270)));
    }

    #[test]
    fn incremental_matches_full_analysis_on_id_swaps() {
        let mk = || {
            net_with(vec![
                msg("a", 0x100, 8, 5, 1, 0),
                msg("b", 0x140, 4, 10, 0, 1),
                msg("c", 0x180, 8, 10, 2, 0),
                msg("d", 0x1C0, 2, 20, 0, 1),
                msg("e", 0x200, 8, 20, 1, 0),
            ])
        };
        let cfg = AnalysisConfig::default();
        let errors = SporadicErrors::new(Time::from_ms(20));
        let base = mk();
        let previous = analyze_bus(&base, &errors, &cfg).expect("valid");
        let previous_hp = hp_index_sets(&base);

        // Swap the two weakest identifiers: only d and e change sets.
        let mut swapped = mk();
        let (d_id, e_id) = (swapped.messages()[3].id, swapped.messages()[4].id);
        swapped.messages_mut()[3].id = e_id;
        swapped.messages_mut()[4].id = d_id;

        let (incremental, stats) =
            analyze_bus_incremental(&swapped, &errors, &cfg, &previous, &previous_hp)
                .expect("valid");
        let full = analyze_bus(&swapped, &errors, &cfg).expect("valid");
        assert_eq!(stats.reused, 3, "a, b, c keep their hp sets");
        assert_eq!(stats.recomputed, 2);
        for (i, f) in incremental.messages.iter().zip(&full.messages) {
            assert_eq!(i.outcome, f.outcome, "{}", f.name);
            assert_eq!(i.id, f.id);
            assert_eq!(i.blocking, f.blocking);
            assert_eq!(i.instances, f.instances);
            assert_eq!(i.deadline, f.deadline);
        }
    }

    #[test]
    fn incremental_falls_back_when_not_comparable() {
        let net = net_with(vec![msg("a", 0x100, 8, 10, 0, 0)]);
        let cfg = AnalysisConfig::default();
        let previous = analyze_bus(&net, &NoErrors, &cfg).expect("valid");
        let previous_hp = hp_index_sets(&net);
        // Different error model: the previous report is not comparable,
        // so everything is recomputed — against the new model.
        let errors = SporadicErrors::new(Time::from_s(1));
        let (report, stats) =
            analyze_bus_incremental(&net, &errors, &cfg, &previous, &previous_hp).expect("valid");
        assert_eq!(stats.reused, 0);
        assert_eq!(stats.recomputed, 1);
        assert_eq!(
            report.messages[0].outcome,
            analyze_bus(&net, &errors, &cfg).expect("valid").messages[0].outcome
        );
    }

    #[test]
    fn hp_sets_follow_arbitration_order() {
        let net = net_with(vec![
            msg("weak", 0x200, 8, 10, 0, 0),
            msg("strong", 0x100, 8, 10, 0, 1),
        ]);
        assert_eq!(hp_index_sets(&net), vec![vec![1], vec![]]);
    }

    #[test]
    fn own_jitter_spawns_multiple_instances() {
        // One message whose jitter exceeds its period: two queuings can
        // pile up, so the busy period spans multiple instances.
        let m = CanMessage::new(
            "j",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(8),
            Time::from_ms(1),
            Time::from_ms(2),
            0,
        )
        .with_deadline(DeadlinePolicy::Period);
        let net = net_with(vec![m]);
        let rep = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let r = &rep.messages[0];
        assert!(r.instances >= 2, "instances: {}", r.instances);
        // Three queuings back to back: the last starts after 2 earlier
        // frames, responds at 3*270us relative to its own queuing...
        // bounded and larger than a single frame in any case:
        assert!(r.outcome.wcrt().expect("bounded") > Time::from_us(270));
    }
}
