//! The CAN network model: a bus, its nodes and its messages.

use crate::backend::BackendConfig;
use crate::controller::ControllerType;
use crate::frame::StuffingMode;
use crate::message::CanMessage;
use carta_core::load::{bus_load, LoadReport, TrafficSource};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A node (ECU or gateway port) attached to the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Node name.
    pub name: String,
    /// TX-path architecture of its CAN controller.
    pub controller: ControllerType,
}

impl Node {
    /// Creates a node with the given controller type.
    pub fn new(name: impl Into<String>, controller: ControllerType) -> Self {
        Node {
            name: name.into(),
            controller,
        }
    }
}

/// Why a [`CanNetwork`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateNetworkError {
    /// Two messages share a CAN identifier.
    DuplicateId {
        /// The clashing identifier, formatted.
        id: String,
        /// Names of the two messages involved.
        messages: (String, String),
    },
    /// A message references a node index that does not exist.
    UnknownSender {
        /// Message name.
        message: String,
        /// Out-of-range node index.
        sender: usize,
    },
    /// Two messages share a name.
    DuplicateName(String),
    /// The bus has no messages.
    Empty,
    /// The bus bit rate is zero: no frame can ever be transmitted.
    ZeroBitRate,
    /// A message activates with a zero period/minimum inter-arrival
    /// time, which would admit unboundedly many arrivals in any window.
    ZeroPeriod {
        /// Message name.
        message: String,
    },
    /// A message's payload exceeds what the bus backend can carry
    /// (e.g. a 64-byte FD payload on a classic CAN bus).
    PayloadExceedsBackend {
        /// Message name.
        message: String,
        /// Requested payload in bytes.
        bytes: u8,
        /// The backend's payload limit in bytes.
        max: u8,
    },
}

impl fmt::Display for ValidateNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateNetworkError::DuplicateId { id, messages } => write!(
                f,
                "identifier {id} assigned to both `{}` and `{}`",
                messages.0, messages.1
            ),
            ValidateNetworkError::UnknownSender { message, sender } => {
                write!(f, "message `{message}` sent by unknown node index {sender}")
            }
            ValidateNetworkError::DuplicateName(name) => {
                write!(f, "duplicate message name `{name}`")
            }
            ValidateNetworkError::Empty => write!(f, "network has no messages"),
            ValidateNetworkError::ZeroBitRate => write!(f, "bus bit rate is zero"),
            ValidateNetworkError::ZeroPeriod { message } => {
                write!(f, "message `{message}` has a zero period")
            }
            ValidateNetworkError::PayloadExceedsBackend {
                message,
                bytes,
                max,
            } => {
                write!(
                    f,
                    "message `{message}` carries {bytes} bytes but the bus backend allows at \
                     most {max}"
                )
            }
        }
    }
}

impl Error for ValidateNetworkError {}

/// A single CAN bus with its nodes and communication matrix.
///
/// # Examples
///
/// ```
/// use carta_can::prelude::*;
/// use carta_core::time::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut net = CanNetwork::new(500_000);
/// let ecu = net.add_node(Node::new("EMS", ControllerType::FullCan));
/// net.add_message(CanMessage::new(
///     "engine_rpm",
///     CanId::standard(0x100)?,
///     Dlc::new(8),
///     Time::from_ms(10),
///     Time::ZERO,
///     ecu,
/// ));
/// net.validate()?;
/// assert_eq!(net.messages().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CanNetwork {
    bit_rate: u64,
    backend: BackendConfig,
    nodes: Vec<Node>,
    messages: Vec<CanMessage>,
}

impl CanNetwork {
    /// Creates an empty classic-CAN network with the given bit rate
    /// (bits/s). Use [`CanNetwork::with_backend`] for other bus
    /// protocols.
    ///
    /// A zero bit rate is accepted here so that hostile inputs can be
    /// constructed and then *diagnosed*: [`CanNetwork::validate`] (run
    /// by every analysis entry point) rejects it with
    /// [`ValidateNetworkError::ZeroBitRate`] instead of panicking.
    pub fn new(bit_rate: u64) -> Self {
        CanNetwork {
            bit_rate,
            backend: BackendConfig::default(),
            nodes: Vec::new(),
            messages: Vec::new(),
        }
    }

    /// Bus speed in bits per second. For dual-rate backends (CAN FD)
    /// this is the *nominal* (arbitration-phase) rate; the data-phase
    /// rate is derived by the backend.
    pub fn bit_rate(&self) -> u64 {
        self.bit_rate
    }

    /// The bus transmission-time model.
    pub fn backend(&self) -> BackendConfig {
        self.backend
    }

    /// Returns the network with its backend replaced (builder-style).
    pub fn with_backend(mut self, backend: BackendConfig) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the bus backend in place.
    pub fn set_backend(&mut self, backend: BackendConfig) {
        self.backend = backend;
    }

    /// Adds a node and returns its index.
    pub fn add_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds a message and returns its index.
    pub fn add_message(&mut self, message: CanMessage) -> usize {
        self.messages.push(message);
        self.messages.len() - 1
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All messages, in insertion order.
    pub fn messages(&self) -> &[CanMessage] {
        &self.messages
    }

    /// Mutable access to the messages (e.g. for what-if jitter edits).
    pub fn messages_mut(&mut self) -> &mut [CanMessage] {
        &mut self.messages
    }

    /// Looks a message up by name.
    pub fn message_by_name(&self, name: &str) -> Option<(usize, &CanMessage)> {
        self.messages
            .iter()
            .enumerate()
            .find(|(_, m)| m.name == name)
    }

    /// The controller type of a message's sender (default if the node
    /// index is unknown — [`CanNetwork::validate`] rejects that case).
    pub fn controller_of(&self, message: &CanMessage) -> ControllerType {
        self.nodes
            .get(message.sender)
            .map(|n| n.controller)
            .unwrap_or_default()
    }

    /// Message indices sorted by descending priority (ascending
    /// arbitration key).
    pub fn priority_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.messages.len()).collect();
        order.sort_by_key(|&i| self.messages[i].id.arbitration_key());
        order
    }

    /// Checks structural integrity.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateNetworkError`] found.
    pub fn validate(&self) -> Result<(), ValidateNetworkError> {
        if self.bit_rate == 0 {
            return Err(ValidateNetworkError::ZeroBitRate);
        }
        if self.messages.is_empty() {
            return Err(ValidateNetworkError::Empty);
        }
        let mut ids = std::collections::HashMap::new();
        let mut names = HashSet::new();
        for m in &self.messages {
            if let Some(prev) = ids.insert(m.id.arbitration_key(), &m.name) {
                return Err(ValidateNetworkError::DuplicateId {
                    id: m.id.to_string(),
                    messages: (prev.clone(), m.name.clone()),
                });
            }
            if !names.insert(m.name.as_str()) {
                return Err(ValidateNetworkError::DuplicateName(m.name.clone()));
            }
            if m.sender >= self.nodes.len() {
                return Err(ValidateNetworkError::UnknownSender {
                    message: m.name.clone(),
                    sender: m.sender,
                });
            }
            if m.activation.period().is_zero() {
                return Err(ValidateNetworkError::ZeroPeriod {
                    message: m.name.clone(),
                });
            }
            let max = self.backend.backend().max_payload_bytes();
            if m.dlc.bytes() > max {
                return Err(ValidateNetworkError::PayloadExceedsBackend {
                    message: m.name.clone(),
                    bytes: m.dlc.bytes(),
                    max,
                });
            }
        }
        Ok(())
    }

    /// The simple load analysis of the paper's Section 3.1, under the
    /// chosen stuffing assumption. Frame lengths come from the bus
    /// backend; data-phase bits of dual-rate backends are counted at
    /// their nominal-rate equivalent.
    pub fn load(&self, stuffing: StuffingMode) -> LoadReport {
        let sources = self.messages.iter().map(|m| {
            let bits = self
                .backend
                .nominal_equivalent_bits(m.id.kind(), m.dlc, stuffing);
            TrafficSource::new(bits, m.activation.period())
        });
        bus_load(sources, self.bit_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Dlc;
    use crate::message::CanId;
    use carta_core::time::Time;

    fn msg(name: &str, id: u32, dlc: u8, period_ms: u64, sender: usize) -> CanMessage {
        CanMessage::new(
            name,
            CanId::standard(id).expect("valid id"),
            Dlc::new(dlc),
            Time::from_ms(period_ms),
            Time::ZERO,
            sender,
        )
    }

    fn two_node_net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        net.add_node(Node::new("EMS", ControllerType::FullCan));
        net.add_node(Node::new("TCU", ControllerType::BasicCan));
        net
    }

    #[test]
    fn validate_catches_duplicate_ids() {
        let mut net = two_node_net();
        net.add_message(msg("a", 0x100, 8, 10, 0));
        net.add_message(msg("b", 0x100, 8, 10, 1));
        match net.validate() {
            Err(ValidateNetworkError::DuplicateId { messages, .. }) => {
                assert_eq!(messages, ("a".into(), "b".into()));
            }
            other => panic!("expected DuplicateId, got {other:?}"),
        }
    }

    #[test]
    fn validate_catches_duplicate_names_and_unknown_sender() {
        let mut net = two_node_net();
        net.add_message(msg("a", 0x100, 8, 10, 0));
        net.add_message(msg("a", 0x101, 8, 10, 0));
        assert!(matches!(
            net.validate(),
            Err(ValidateNetworkError::DuplicateName(_))
        ));

        let mut net = two_node_net();
        net.add_message(msg("a", 0x100, 8, 10, 7));
        assert!(matches!(
            net.validate(),
            Err(ValidateNetworkError::UnknownSender { sender: 7, .. })
        ));

        let net = two_node_net();
        assert_eq!(net.validate(), Err(ValidateNetworkError::Empty));
    }

    #[test]
    fn validate_catches_zero_bit_rate_and_zero_period() {
        let mut net = CanNetwork::new(0);
        net.add_node(Node::new("EMS", ControllerType::FullCan));
        net.add_message(msg("a", 0x100, 8, 10, 0));
        assert_eq!(net.validate(), Err(ValidateNetworkError::ZeroBitRate));

        let mut net = two_node_net();
        net.add_message(msg("a", 0x100, 8, 0, 0));
        assert!(matches!(
            net.validate(),
            Err(ValidateNetworkError::ZeroPeriod { .. })
        ));
    }

    #[test]
    fn priority_order_follows_arbitration() {
        let mut net = two_node_net();
        net.add_message(msg("low", 0x400, 8, 10, 0));
        net.add_message(msg("high", 0x100, 8, 10, 0));
        net.add_message(msg("mid", 0x200, 8, 10, 1));
        assert_eq!(net.priority_order(), vec![1, 2, 0]);
    }

    #[test]
    fn load_respects_stuffing_mode() {
        let mut net = two_node_net();
        net.add_message(msg("a", 0x100, 8, 10, 0));
        let worst = net.load(StuffingMode::WorstCase);
        let best = net.load(StuffingMode::None);
        // 135 vs 111 bits every 10 ms on 500 kbit/s.
        assert!((worst.utilization() - 0.027).abs() < 1e-9);
        assert!((best.utilization() - 0.0222).abs() < 1e-9);
    }

    #[test]
    fn message_lookup_and_mutation() {
        let mut net = two_node_net();
        net.add_message(msg("a", 0x100, 8, 10, 0));
        let (idx, m) = net.message_by_name("a").expect("present");
        assert_eq!(idx, 0);
        assert_eq!(m.dlc.bytes(), 8);
        assert!(net.message_by_name("zzz").is_none());
        net.messages_mut()[0].activation =
            carta_core::event_model::EventModel::periodic_with_jitter(
                Time::from_ms(10),
                Time::from_ms(2),
            );
        assert_eq!(net.messages()[0].activation.jitter(), Time::from_ms(2));
    }

    #[test]
    fn networks_default_to_classic_can() {
        let net = two_node_net();
        assert_eq!(net.backend(), BackendConfig::Can);
        let fd = net.clone().with_backend(BackendConfig::can_fd());
        assert_eq!(fd.backend(), BackendConfig::can_fd());
        assert_ne!(net, fd, "backend participates in network equality");
    }

    #[test]
    fn validate_rejects_fd_payloads_on_classic_backends() {
        let mut net = two_node_net();
        net.add_message(msg("a", 0x100, 8, 10, 0));
        net.messages_mut()[0].dlc = Dlc::fd(64);
        assert!(matches!(
            net.validate(),
            Err(ValidateNetworkError::PayloadExceedsBackend {
                bytes: 64,
                max: 8,
                ..
            })
        ));
        net.set_backend(BackendConfig::can_fd());
        net.validate().expect("FD backend carries 64 bytes");
    }

    #[test]
    fn fd_load_is_lighter_than_classic_at_same_payload() {
        let mut net = two_node_net();
        net.add_message(msg("a", 0x100, 8, 10, 0));
        let classic = net.load(StuffingMode::WorstCase).utilization();
        net.set_backend(BackendConfig::can_fd());
        let fd = net.load(StuffingMode::WorstCase).utilization();
        assert!(fd < classic, "fd {fd} vs classic {classic}");
    }

    #[test]
    fn controller_lookup() {
        let mut net = two_node_net();
        let i = net.add_message(msg("a", 0x100, 8, 10, 1));
        assert_eq!(
            net.controller_of(&net.messages()[i]),
            ControllerType::BasicCan
        );
    }
}
