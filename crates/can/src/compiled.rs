//! The compiled RTA kernel: a compile/solve split of the busy-window
//! analysis.
//!
//! [`crate::rta::analyze_bus`] rebuilds the same per-topology data on
//! every call: priority-sorted index sets, worst/best-case frame-time
//! vectors, per-controller interference sets and error constants. For
//! workloads that analyze thousands of *variants* of one network
//! (jitter sweeps, identifier searches, fuzzing), that per-call work —
//! and its allocations — dominates. [`CompiledBus`] performs it once:
//!
//! * **compile** ([`CompiledBus::compile`]) derives everything that
//!   depends only on the topology (identifiers, payloads, senders,
//!   controllers, bit rate, stuffing mode): `c_max`/`c_min` vectors,
//!   hp/interference index sets, blocking and per-error-hit constants,
//!   and interned message names;
//! * **solve** ([`CompiledBus::solve`]) reads only the *event models*
//!   and deadlines from the network, so jitter and deadline overlays
//!   need no recompilation, and runs the busy-window fixpoints through
//!   a reusable [`RtaWorkspace`] that makes the steady state
//!   allocation-free and **warm-starts** each fixpoint from the
//!   previous solution when that is provably sound.
//!
//! # Warm-start soundness
//!
//! For message `i`, instance `q`, the busy window is the least fixpoint
//! of the monotone demand function
//!
//! ```text
//! f_q(w) = B_i + (q−1)·C_i + E(w + C_i) + Σ_{j ∈ I(i)} η⁺_j(w + τ)·C_j
//! ```
//!
//! Kleene iteration from any start `v ≤ lfp(f_q)` converges to exactly
//! `lfp(f_q)` (every iterate stays ≤ the fixpoint by monotonicity, and
//! the iteration cannot stop strictly below it). The previous
//! solution's fixpoint `w_q^old = lfp(f_q^old)` is therefore a valid
//! start whenever the *new* demand dominates the old one pointwise,
//! `f_q^new ≥ f_q^old`, which forces `lfp(f_q^old) ≤ lfp(f_q^new)`.
//! Note that a start *above* the least fixpoint would be unsound — the
//! iteration could settle on a larger post-fixpoint — and no local
//! probe at the old value can rule that out, so dominance of the demand
//! function itself is the gate:
//!
//! * the compiled tables (`C`, `B`, per-hit constant, interference
//!   sets) are unchanged — enforced by comparing the compile epoch;
//! * the error model and config are unchanged (`E` is the same
//!   monotone function);
//! * every interfering activation dominates its previous self:
//!   `η⁺_j^new ≥ η⁺_j^old` pointwise, for which
//!   `P_new ≤ P_old ∧ J_new ≥ J_old` plus a compatible `d_min` is
//!   sufficient (see [`eta_dominates`]).
//!
//! The message's *own* activation never appears in `f_q`, only in the
//! busy-period extension and the response-time subtraction — both are
//! evaluated fresh per solve — so it needs no dominance check. Because
//! the warm start converges to the *same* least fixpoint the cold start
//! would, the produced [`BusReport`] is bit-identical either way (the
//! `compiled-equals-naive` fuzz law in `carta-testkit` pins this).
//!
//! # Structure-of-arrays batch solving
//!
//! The solve phase reads exactly two things that vary between sweep
//! points: the activation models and the resolved deadlines. A
//! [`SolvePoint`] carries just those two dense vectors, and
//! [`CompiledBus::solve_batch`] iterates the solve over a slice of
//! points against the compiled `c_max`/`c_min`/interference tables laid
//! out once — no per-point network materialization, no per-point
//! re-walk of message structs, and the per-batch setup (error-model
//! description, mutation hook) hoisted out of the loop.
//! [`CompiledBus::solve`] is the 1-point case of the same core, so
//! batch and per-point solves are bit-identical against the same
//! workspace sequence.

use crate::backend::BackendConfig;
use crate::controller::ControllerType;
use crate::error_model::ErrorModel;
use crate::frame::{bit_time, StuffingMode};
use crate::message::CanId;
use crate::network::CanNetwork;
use crate::rta::{
    test_mutations, AnalysisConfig, BusReport, IncrementalStats, MessageReport, ResponseOutcome,
};
use carta_core::analysis::{AnalysisError, DivergenceCause, MessageDiagnostic, ResponseBounds};
use carta_core::cancel::CancelToken;
use carta_core::event_model::EventModel;
use carta_core::time::Time;
use carta_obs::metrics::{self, Counter, Histogram};
use carta_obs::{event, span};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Pre-resolved global-registry handles for the compiled kernel.
/// Recording happens only while [`metrics::enabled`].
struct CompiledMetrics {
    compile_ns: Arc<Histogram>,
    warm_starts: Arc<Counter>,
    iters_saved: Arc<Counter>,
}

fn compiled_metrics() -> &'static CompiledMetrics {
    static HANDLES: OnceLock<CompiledMetrics> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let registry = metrics::global();
        CompiledMetrics {
            compile_ns: registry.histogram("rta.compile_ns"),
            warm_starts: registry.counter("rta.warm_starts"),
            iters_saved: registry.counter("rta.fixpoint_iters_saved"),
        }
    })
}

/// Monotonically increasing compile identity. Two [`CompiledBus`]
/// values never share an epoch, so a workspace's warm state can be tied
/// to exactly the tables it was produced with.
fn next_epoch() -> u64 {
    static EPOCH: AtomicU64 = AtomicU64::new(1);
    EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// `η⁺_new(Δ) ≥ η⁺_old(Δ)` for every window `Δ` — the per-stream gate
/// of the warm start.
///
/// With `η⁺(Δ) = min(⌈(Δ+J)/P⌉, ⌈Δ/d⌉)` (the `d` term absent when
/// `d = 0`), a sufficient condition is that both branches grew:
/// `P_new ≤ P_old`, `J_new ≥ J_old`, and the `d` branch of the new
/// model is no tighter than the old one's (`d_new = 0` means
/// unconstrained, i.e. `+∞`). The activation kind never enters `η⁺`.
pub(crate) fn eta_dominates(new: &EventModel, old: &EventModel) -> bool {
    new == old
        || (new.period() <= old.period()
            && new.jitter() >= old.jitter()
            && (new.dmin().is_zero() || (!old.dmin().is_zero() && new.dmin() <= old.dmin())))
}

/// Work accounting of one [`CompiledBus::solve`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Messages whose busy-window fixpoints were warm-started from the
    /// workspace's previous solution.
    pub warm_messages: u64,
    /// Messages solved from a cold start.
    pub cold_messages: u64,
    /// Fixpoint iterations spent in this solve.
    pub iterations: u64,
    /// Estimated fixpoint iterations avoided by warm starts: for every
    /// warm-started message, the iterations its *previous* solve spent
    /// minus the iterations this solve spent (floored at zero). An
    /// estimate — the true cold cost of the new parameters is unknown
    /// without running it — but a faithful trend indicator.
    pub iters_saved: u64,
}

/// One solve-phase input in structure-of-arrays form: the per-message
/// activation models and resolved deadlines — everything the solve
/// phase reads that is not already in the compiled tables. Batch
/// workloads lay points out once and feed slices of them to
/// [`CompiledBus::solve_batch`] without materializing a network per
/// point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolvePoint {
    activations: Vec<EventModel>,
    deadlines: Vec<Time>,
}

impl SolvePoint {
    /// An empty point (fill before solving).
    pub fn new() -> Self {
        Self::default()
    }

    /// The point describing `net` as-is: its activations and resolved
    /// deadlines, indexed like the network's messages.
    pub fn from_network(net: &CanNetwork) -> Self {
        let mut point = Self::default();
        point.fill_from_network(net);
        point
    }

    /// Rewrites this point from `net`, reusing the allocations.
    pub fn fill_from_network(&mut self, net: &CanNetwork) {
        let msgs = net.messages();
        self.fill_with(msgs.len(), |i| {
            let m = &msgs[i];
            (m.activation, m.resolved_deadline())
        });
    }

    /// Rewrites this point row by row: `row(i)` must return message
    /// `i`'s activation model and resolved deadline.
    pub fn fill_with(&mut self, n: usize, mut row: impl FnMut(usize) -> (EventModel, Time)) {
        self.activations.clear();
        self.deadlines.clear();
        self.activations.reserve(n);
        self.deadlines.reserve(n);
        for i in 0..n {
            let (activation, deadline) = row(i);
            self.activations.push(activation);
            self.deadlines.push(deadline);
        }
    }

    /// Number of messages in this point.
    pub fn len(&self) -> usize {
        self.activations.len()
    }

    /// `true` when the point has not been filled yet.
    pub fn is_empty(&self) -> bool {
        self.activations.is_empty()
    }

    /// The per-message activation models.
    pub fn activations(&self) -> &[EventModel] {
        &self.activations
    }

    /// The per-message resolved deadlines.
    pub fn deadlines(&self) -> &[Time] {
        &self.deadlines
    }
}

/// Reusable solve-phase state: busy-window warm-start data plus the
/// scratch buffers that make the steady state allocation-free.
///
/// A workspace belongs to one solving thread and may be reused across
/// arbitrary [`CompiledBus::solve`] calls — every warm-start gate
/// (compile epoch, error model, config, activation dominance) is
/// checked internally, so a stale or mismatched workspace degrades to a
/// cold start, never to a wrong result.
#[derive(Debug, Default)]
pub struct RtaWorkspace {
    /// Epoch of the [`CompiledBus`] the warm state belongs to
    /// (0 = no valid state).
    epoch: u64,
    /// `describe()` of the error model of the last solve.
    errors_desc: String,
    horizon: Time,
    max_instances: u64,
    /// Activations of the last solve, indexed like the network.
    activations: Vec<EventModel>,
    /// Converged per-instance busy windows of the last solve:
    /// `w[i][q-1]` is the least fixpoint of message `i`, instance `q`.
    /// May be a prefix when the last solve overloaded past it.
    w: Vec<Vec<Time>>,
    /// Per-message fixpoint iterations of the last solve.
    iters: Vec<u64>,
    /// Scratch: per-stream dominance flags of the current solve.
    dominates: Vec<bool>,
    /// Scratch: the window vector of the message being solved.
    w_next: Vec<Time>,
    /// Scratch: the SoA point [`CompiledBus::solve`] extracts from the
    /// network it is handed (reused so the steady state stays
    /// allocation-free).
    point: SolvePoint,
    /// Stats of the most recent solve.
    last: SolveStats,
}

impl RtaWorkspace {
    /// An empty workspace (first solve runs cold).
    pub fn new() -> Self {
        Self::default()
    }

    /// Work accounting of the most recent [`CompiledBus::solve`].
    pub fn last_stats(&self) -> SolveStats {
        self.last
    }

    /// Drops all warm-start state (subsequent solves run cold until
    /// they re-establish it).
    pub fn invalidate(&mut self) {
        self.epoch = 0;
    }

    fn resize(&mut self, n: usize) {
        self.w.resize_with(n, Vec::new);
        self.iters.resize(n, 0);
        self.dominates.resize(n, false);
    }
}

/// Precompiled per-topology tables of one CAN bus: everything the
/// busy-window solve needs that does not depend on event models or
/// deadlines.
#[derive(Debug, Clone)]
pub struct CompiledBus {
    epoch: u64,
    stuffing: StuffingMode,
    backend: BackendConfig,
    bit_rate: u64,
    /// One bit time on this bus.
    tau: Time,
    /// Interned message names, shared by every report produced from
    /// these tables (cloning an `Arc<str>` is a refcount bump).
    names: Vec<Arc<str>>,
    ids: Vec<CanId>,
    c_max: Vec<Time>,
    c_min: Vec<Time>,
    /// `hp[i]`: indices of the messages that out-arbitrate `i`,
    /// ascending.
    hp: Vec<Vec<usize>>,
    /// `interference[i]`: the index set whose `η⁺` feeds message `i`'s
    /// demand (hp for fullCAN senders; hp plus other-node lp for
    /// basicCAN/FIFO senders).
    interference: Vec<Vec<usize>>,
    /// Total (bus + controller-local) blocking charged to message `i`.
    blocking: Vec<Time>,
    /// Error overhead per hit while `i` waits: error frame plus the
    /// longest retransmission among `interference[i] ∪ {i}`.
    per_hit: Vec<Time>,
}

impl CompiledBus {
    /// Compiles the per-topology tables of `net` under `stuffing`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidModel`] if the network fails
    /// [`CanNetwork::validate`].
    pub fn compile(net: &CanNetwork, stuffing: StuffingMode) -> Result<Self, AnalysisError> {
        net.validate()
            .map_err(|e| AnalysisError::InvalidModel(e.to_string()))?;
        let start = metrics::enabled().then(Instant::now);
        let names = net
            .messages()
            .iter()
            .map(|m| Arc::from(m.name.as_str()))
            .collect();
        let compiled = Self::tables(net, stuffing, names);
        if let Some(start) = start {
            compiled_metrics()
                .compile_ns
                .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        Ok(compiled)
    }

    /// Recompiles only the identifier-dependent tables against `net`,
    /// reusing the interned names. `net` must be the compiled network
    /// with its identifiers re-assigned (same messages in the same
    /// order — exactly what a permutation overlay produces); everything
    /// else (payloads, senders, controllers, bit rate) is re-read from
    /// `net`, so a violated contract yields wrong *performance
    /// attribution* at worst, never a wrong report.
    ///
    /// The result carries a fresh epoch: warm-start state tied to the
    /// old tables is never applied to the new priority order.
    ///
    /// # Panics
    ///
    /// Panics if `net` has a different message count.
    pub fn reordered(&self, net: &CanNetwork) -> Self {
        assert_eq!(
            net.messages().len(),
            self.names.len(),
            "reordered() requires the compiled network with new identifiers"
        );
        Self::tables(net, self.stuffing, self.names.clone())
    }

    /// Shared table construction; `net` is already validated.
    fn tables(net: &CanNetwork, stuffing: StuffingMode, names: Vec<Arc<str>>) -> Self {
        let msgs = net.messages();
        let n = msgs.len();
        let rate = net.bit_rate();
        let backend = net.backend();
        let c_max = crate::rta::c_max_vector(net, stuffing);
        let c_min: Vec<Time> = msgs
            .iter()
            .map(|m| backend.c_min(m.id.kind(), m.dlc, rate))
            .collect();
        let mut hp = Vec::with_capacity(n);
        let mut interference = Vec::with_capacity(n);
        let mut blocking = Vec::with_capacity(n);
        let mut per_hit = Vec::with_capacity(n);
        let error_frame = Time::from_bits(backend.backend().error_frame_bits(), rate);
        for (i, m) in msgs.iter().enumerate() {
            let key = m.id.arbitration_key();
            let hp_i: Vec<usize> = (0..n)
                .filter(|&j| msgs[j].id.arbitration_key() < key)
                .collect();
            let lp_i: Vec<usize> = (0..n)
                .filter(|&j| j != i && msgs[j].id.arbitration_key() > key)
                .collect();
            let interference_i: Vec<usize> = match net.controller_of(m) {
                ControllerType::FullCan => hp_i.clone(),
                ControllerType::BasicCan | ControllerType::FifoQueue { .. } => {
                    let mut set = hp_i.clone();
                    set.extend(lp_i.iter().copied().filter(|&j| msgs[j].sender != m.sender));
                    set
                }
            };
            let retx = interference_i
                .iter()
                .map(|&j| c_max[j])
                .max()
                .unwrap_or(c_max[i])
                .max(c_max[i]);
            blocking.push(crate::rta::blocking_for(net, i, &c_max, &lp_i));
            per_hit.push(error_frame + retx);
            hp.push(hp_i);
            interference.push(interference_i);
        }
        CompiledBus {
            epoch: next_epoch(),
            stuffing,
            backend,
            bit_rate: rate,
            tau: bit_time(rate),
            names,
            ids: msgs.iter().map(|m| m.id).collect(),
            c_max,
            c_min,
            hp,
            interference,
            blocking,
            per_hit,
        }
    }

    /// Number of messages on the compiled bus.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` for an empty bus (never produced by [`CompiledBus::compile`],
    /// which rejects invalid networks).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The stuffing mode the tables were compiled under.
    pub fn stuffing(&self) -> StuffingMode {
        self.stuffing
    }

    /// The bus backend the tables were compiled under.
    pub fn backend(&self) -> BackendConfig {
        self.backend
    }

    /// The higher-priority index sets (see
    /// [`crate::rta::hp_index_sets`]).
    pub fn hp_sets(&self) -> &[Vec<usize>] {
        &self.hp
    }

    /// The interference index sets: `interference_sets()[i]` holds the
    /// messages whose `η⁺` feeds message `i`'s busy-window demand (hp
    /// for fullCAN senders; hp plus other-node lp for basicCAN/FIFO
    /// senders). These are exactly the sets a divergence diagnostic
    /// names.
    pub fn interference_sets(&self) -> &[Vec<usize>] {
        &self.interference
    }

    /// One bit time on the compiled bus.
    pub(crate) fn tau(&self) -> Time {
        self.tau
    }

    /// Per-message error overhead per hit (error frame plus the longest
    /// retransmission among the interference set and the message
    /// itself).
    pub(crate) fn per_hit_vec(&self) -> &[Time] {
        &self.per_hit
    }

    /// The interned message names.
    pub(crate) fn names(&self) -> &[Arc<str>] {
        &self.names
    }

    /// The compiled identifiers.
    pub(crate) fn ids(&self) -> &[CanId] {
        &self.ids
    }

    /// Lifts an abandoned fixpoint into a degraded-mode diagnostic
    /// with interned names, recording the `rta.diverged` metric and a
    /// structured trace event.
    fn diagnose(&self, i: usize, abort: BusyAbort, recording: bool) -> MessageDiagnostic {
        if recording {
            crate::rta::rta_metrics().diverged.inc();
        }
        event!(
            "rta.diverged",
            msg = self.names[i],
            level = self.hp[i].len(),
            w = abort.w,
            q = abort.q,
            cause = abort.cause,
        );
        MessageDiagnostic {
            entity: self.names[i].clone(),
            priority_level: self.hp[i].len(),
            busy_window: abort.w,
            instances: abort.q,
            interference: self.interference[i]
                .iter()
                .map(|&j| self.names[j].clone())
                .collect(),
            cause: abort.cause,
        }
    }

    /// Runs the solve phase against `net`, which must be the compiled
    /// topology with possibly different event models and deadline
    /// policies (identifiers, payloads, senders and bit rate
    /// unchanged). Busy-window fixpoints warm-start from `ws` where the
    /// dominance gate allows; the report is bit-identical to a cold
    /// solve either way.
    ///
    /// # Panics
    ///
    /// Panics if `config.stuffing` differs from the compiled mode or
    /// the message count changed. Identifier agreement is the caller's
    /// contract (checked in debug builds).
    pub fn solve(
        &self,
        net: &CanNetwork,
        errors: &dyn ErrorModel,
        config: &AnalysisConfig,
        ws: &mut RtaWorkspace,
    ) -> BusReport {
        let msgs = net.messages();
        assert_eq!(
            msgs.len(),
            self.names.len(),
            "solve() requires the compiled topology"
        );
        debug_assert!(
            msgs.iter().zip(&self.ids).all(|(m, id)| m.id == *id),
            "identifiers diverged from the compiled tables; recompile or reorder first"
        );
        debug_assert_eq!(net.bit_rate(), self.bit_rate);
        debug_assert_eq!(
            net.backend(),
            self.backend,
            "bus backend diverged from the compiled tables; recompile first"
        );
        let mut point = std::mem::take(&mut ws.point);
        point.fill_from_network(net);
        let report = self.solve_point(&point, errors, config, ws);
        ws.point = point;
        report
    }

    /// The 1-point case of [`CompiledBus::solve_batch`]: solves one
    /// structure-of-arrays point against the compiled tables, with the
    /// same warm-start behavior as [`CompiledBus::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `config.stuffing` differs from the compiled mode or
    /// the point's message count differs from the compiled topology.
    pub fn solve_point(
        &self,
        point: &SolvePoint,
        errors: &dyn ErrorModel,
        config: &AnalysisConfig,
        ws: &mut RtaWorkspace,
    ) -> BusReport {
        let desc = errors.describe();
        let hook = test_mutations::drop_blocking();
        match self.solve_core(point, errors, &desc, hook, config, None, ws) {
            Ok(report) => report,
            // solve_core only aborts when a token trips; `None` cannot.
            Err(_) => unreachable!("uncancellable solve reported cancellation"),
        }
    }

    /// Like [`CompiledBus::solve_point`], but polls `cancel` between
    /// per-message busy-window fixpoints. A tripped token abandons the
    /// point *whole* — `Err(AnalysisError::Cancelled)`, never a partial
    /// report — and invalidates the workspace's warm state so a
    /// half-solved point can never seed a later warm start. Points that
    /// complete before the trip are bit-identical to an uncancelled
    /// solve.
    ///
    /// # Panics
    ///
    /// Panics if `config.stuffing` differs from the compiled mode or
    /// the point's message count differs from the compiled topology.
    pub fn solve_point_cancellable(
        &self,
        point: &SolvePoint,
        errors: &dyn ErrorModel,
        config: &AnalysisConfig,
        cancel: &CancelToken,
        ws: &mut RtaWorkspace,
    ) -> Result<BusReport, AnalysisError> {
        let desc = errors.describe();
        let hook = test_mutations::drop_blocking();
        self.solve_core(point, errors, &desc, hook, config, Some(cancel), ws)
    }

    /// Iterates the solve phase over a slice of SoA points against the
    /// compiled per-message vectors laid out once, carrying warm-start
    /// state from point to point through `ws` under the usual dominance
    /// gate. Per-batch setup (error-model description, mutation-hook
    /// probe) is hoisted out of the loop; each point is otherwise
    /// solved exactly like [`CompiledBus::solve_point`], so the reports
    /// are bit-identical to per-point solves against the same workspace
    /// sequence. Returns the reports plus the batch's aggregated
    /// [`SolveStats`].
    ///
    /// # Panics
    ///
    /// Panics if `config.stuffing` differs from the compiled mode or
    /// any point's message count differs from the compiled topology.
    pub fn solve_batch(
        &self,
        points: &[SolvePoint],
        errors: &dyn ErrorModel,
        config: &AnalysisConfig,
        ws: &mut RtaWorkspace,
    ) -> (Vec<BusReport>, SolveStats) {
        let desc = errors.describe();
        let hook = test_mutations::drop_blocking();
        let mut agg = SolveStats::default();
        let reports = points
            .iter()
            .map(|point| {
                let report = match self.solve_core(point, errors, &desc, hook, config, None, ws) {
                    Ok(report) => report,
                    Err(_) => unreachable!("uncancellable solve reported cancellation"),
                };
                agg.warm_messages += ws.last.warm_messages;
                agg.cold_messages += ws.last.cold_messages;
                agg.iterations += ws.last.iterations;
                agg.iters_saved += ws.last.iters_saved;
                report
            })
            .collect();
        (reports, agg)
    }

    /// The shared solve core: one SoA point against the compiled
    /// tables. `desc` and `hook` are hoisted by the callers so batches
    /// pay for them once. `cancel` (when present) is polled between
    /// per-message fixpoints; a trip abandons the whole point with
    /// `Err(Cancelled)` after invalidating the warm-start state.
    #[allow(clippy::too_many_arguments)]
    fn solve_core(
        &self,
        point: &SolvePoint,
        errors: &dyn ErrorModel,
        desc: &str,
        hook: bool,
        config: &AnalysisConfig,
        cancel: Option<&CancelToken>,
        ws: &mut RtaWorkspace,
    ) -> Result<BusReport, AnalysisError> {
        let acts = point.activations();
        let deadlines = point.deadlines();
        let n = acts.len();
        assert_eq!(n, self.names.len(), "solve requires the compiled topology");
        assert_eq!(n, deadlines.len(), "solve point rows must be complete");
        assert_eq!(
            config.stuffing, self.stuffing,
            "config stuffing must match the compiled tables"
        );
        let _span = span!("rta.bus", msgs = n);

        ws.resize(n);
        let warm_base = !hook
            && ws.epoch == self.epoch
            && ws.errors_desc == desc
            && ws.horizon == config.horizon
            && ws.max_instances == config.max_instances
            && ws.activations.len() == n;
        if warm_base {
            for (j, act) in acts.iter().enumerate() {
                ws.dominates[j] = eta_dominates(act, &ws.activations[j]);
            }
        }

        let recording = metrics::enabled();
        let mut stats = SolveStats::default();
        let mut reports = Vec::with_capacity(n);
        for (i, &deadline) in deadlines.iter().enumerate() {
            if cancel.is_some_and(|token| token.is_cancelled()) {
                // A half-solved point must not seed warm starts: the
                // per-message `w`/`iters` rows past `i` still describe
                // the *previous* point.
                ws.invalidate();
                ws.last = stats;
                return Err(AnalysisError::Cancelled);
            }
            let warm = warm_base && self.interference[i].iter().all(|&j| ws.dominates[j]);
            let blocking = if hook { Time::ZERO } else { self.blocking[i] };
            let mut iterations = 0u64;
            let mut w_next = std::mem::take(&mut ws.w_next);
            let outcome = {
                let warm_hints: &[Time] = if warm { &ws.w[i] } else { &[] };
                busy_window(
                    acts,
                    i,
                    &self.interference[i],
                    &self.c_max,
                    blocking,
                    self.tau,
                    errors,
                    self.per_hit[i],
                    config,
                    warm_hints,
                    &mut w_next,
                    &mut iterations,
                )
            };
            std::mem::swap(&mut ws.w[i], &mut w_next);
            w_next.clear();
            ws.w_next = w_next;
            if warm {
                stats.warm_messages += 1;
                stats.iters_saved += ws.iters[i].saturating_sub(iterations);
            } else {
                stats.cold_messages += 1;
            }
            stats.iterations += iterations;
            ws.iters[i] = iterations;

            let (outcome_enum, instances) = match outcome {
                Ok((wcrt, q)) => (
                    ResponseOutcome::Bounded(ResponseBounds::new(
                        self.c_min[i],
                        wcrt.max(self.c_min[i]),
                    )),
                    q,
                ),
                Err(abort) => (
                    ResponseOutcome::Overload(self.diagnose(i, abort, recording)),
                    0,
                ),
            };
            if recording {
                crate::rta::rta_metrics().busy_instances.record(instances);
            }
            reports.push(MessageReport {
                index: i,
                name: self.names[i].clone(),
                id: self.ids[i],
                c_max: self.c_max[i],
                c_min: self.c_min[i],
                blocking,
                deadline,
                outcome: outcome_enum,
                instances,
            });
        }

        if hook {
            // Fault-injected solves must not seed warm state: the hook
            // can be flipped back off between solves, which would break
            // the demand-dominance premise.
            ws.invalidate();
        } else {
            ws.epoch = self.epoch;
            ws.errors_desc.clear();
            ws.errors_desc.push_str(desc);
            ws.horizon = config.horizon;
            ws.max_instances = config.max_instances;
            ws.activations.clear();
            ws.activations.extend_from_slice(acts);
        }
        ws.last = stats;

        if recording {
            let handles = crate::rta::rta_metrics();
            handles.runs.inc();
            handles.messages.add(n as u64);
            handles.iterations.add(stats.iterations);
            let compiled_handles = compiled_metrics();
            compiled_handles.warm_starts.add(stats.warm_messages);
            compiled_handles.iters_saved.add(stats.iters_saved);
        }
        Ok(BusReport {
            messages: reports,
            error_model: desc.to_string(),
            stuffing: config.stuffing,
            backend: self.backend,
        })
    }

    /// Priority-aware incremental solve: reuses `previous` verdicts for
    /// messages whose higher-priority set is unchanged (the compiled
    /// twin of [`crate::rta::analyze_bus_incremental`]; see there for
    /// the comparability contract). Recomputed messages run cold —
    /// exact reuse already covers the unchanged ones.
    pub fn solve_incremental(
        &self,
        net: &CanNetwork,
        errors: &dyn ErrorModel,
        config: &AnalysisConfig,
        previous: &BusReport,
        previous_hp: &[Vec<usize>],
    ) -> (BusReport, IncrementalStats) {
        let msgs = net.messages();
        let n = msgs.len();
        let _span = span!("rta.bus.incremental", msgs = n);
        let desc = errors.describe();
        let comparable = previous.messages.len() == n
            && previous_hp.len() == n
            && previous.stuffing == config.stuffing
            && previous.backend == self.backend
            && previous.error_model == desc;
        if !comparable {
            let report = self.solve(net, errors, config, &mut RtaWorkspace::new());
            let recomputed = report.messages.len();
            return (
                report,
                IncrementalStats {
                    reused: 0,
                    recomputed,
                },
            );
        }
        // A permutation over a mixed standard/extended pool can change
        // transmission times, which feed every message's interference
        // sum; reuse is only sound when the whole vectors are unchanged.
        let c_vectors_match = previous
            .messages
            .iter()
            .enumerate()
            .all(|(j, p)| p.c_max == self.c_max[j] && p.c_min == self.c_min[j]);
        let hook = test_mutations::drop_blocking();
        let activations: Vec<EventModel> = msgs.iter().map(|m| m.activation).collect();

        let mut stats = IncrementalStats::default();
        let mut iterations = 0u64;
        let mut w_scratch = Vec::new();
        let mut reports = Vec::with_capacity(n);
        for (i, m) in msgs.iter().enumerate() {
            let blocking = if hook { Time::ZERO } else { self.blocking[i] };
            let deadline = m.resolved_deadline();
            let prev = &previous.messages[i];
            let (outcome, instances) = if c_vectors_match
                && prev.name == self.names[i]
                && prev.deadline == deadline
                && self.hp[i] == previous_hp[i]
            {
                stats.reused += 1;
                (prev.outcome.clone(), prev.instances)
            } else {
                stats.recomputed += 1;
                match busy_window(
                    &activations,
                    i,
                    &self.interference[i],
                    &self.c_max,
                    blocking,
                    self.tau,
                    errors,
                    self.per_hit[i],
                    config,
                    &[],
                    &mut w_scratch,
                    &mut iterations,
                ) {
                    Ok((wcrt, q)) => (
                        ResponseOutcome::Bounded(ResponseBounds::new(
                            self.c_min[i],
                            wcrt.max(self.c_min[i]),
                        )),
                        q,
                    ),
                    Err(abort) => (
                        ResponseOutcome::Overload(self.diagnose(i, abort, metrics::enabled())),
                        0,
                    ),
                }
            };
            reports.push(MessageReport {
                index: i,
                name: self.names[i].clone(),
                id: self.ids[i],
                c_max: self.c_max[i],
                c_min: self.c_min[i],
                blocking,
                deadline,
                outcome,
                instances,
            });
        }
        if metrics::enabled() {
            let handles = crate::rta::rta_metrics();
            handles.incremental_runs.inc();
            handles.incremental_reused.add(stats.reused as u64);
            handles.incremental_recomputed.add(stats.recomputed as u64);
            handles.iterations.add(iterations);
        }
        (
            BusReport {
                messages: reports,
                error_model: desc,
                stuffing: config.stuffing,
                backend: self.backend,
            },
            stats,
        )
    }
}

/// Abort state of an abandoned busy-window fixpoint: how far the
/// window had grown, which instance was being examined, and which
/// budget ran out. [`CompiledBus::solve`] lifts this into a
/// [`MessageDiagnostic`] with the interned names of the interference
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BusyAbort {
    /// Busy-window length when the fixpoint was abandoned.
    pub(crate) w: Time,
    /// Instance under examination at the abort.
    pub(crate) q: u64,
    /// Which budget was exhausted.
    pub(crate) cause: DivergenceCause,
}

/// Busy-window iteration for one message; returns `(wcrt, instances)`
/// or the [`BusyAbort`] state on overload / budget exhaustion. Each
/// inner fixpoint step adds one to `iterations` — the convergence-cost
/// figure surfaced as the `rta.iterations` metric.
///
/// The hot loop reads only the dense `activations` vector (SoA layout,
/// indexed like the compiled tables) — never message structs — so
/// batch sweeps stride contiguous event models.
///
/// `warm[q-1]`, when present, is a known lower bound on instance `q`'s
/// least fixpoint (see the module docs for the soundness argument);
/// the iteration starts at the maximum of the cold start and that
/// bound. Every converged window is pushed to `out_w` (cleared first),
/// so the caller can feed them back as the next solve's warm hints.
#[allow(clippy::too_many_arguments)]
pub(crate) fn busy_window(
    activations: &[EventModel],
    i: usize,
    interference: &[usize],
    c_max: &[Time],
    blocking: Time,
    tau: Time,
    errors: &dyn ErrorModel,
    per_hit: Time,
    config: &AnalysisConfig,
    warm: &[Time],
    out_w: &mut Vec<Time>,
    iterations: &mut u64,
) -> Result<(Time, u64), BusyAbort> {
    let c_m = c_max[i];
    let own = &activations[i];
    out_w.clear();
    let mut wcrt = Time::ZERO;
    // Per-message divergence budget, measured against the shared
    // cumulative counter so the hot loop stays branch-light.
    let budget_end = iterations.saturating_add(config.max_iterations);
    // `w` carries over between instances: the demand is monotone in
    // both `w` and `q`, so the least fixpoint for q+1 is at least the
    // one for q, and a warm hint can only raise the start further —
    // never past the least fixpoint it came below.
    let mut w = Time::ZERO;
    let mut q = 1u64;
    loop {
        // Fixpoint iteration for instance q.
        w = w.max(blocking + c_m * (q - 1));
        if let Some(&hint) = warm.get((q - 1) as usize) {
            w = w.max(hint);
        }
        loop {
            if *iterations >= budget_end {
                return Err(BusyAbort {
                    w,
                    q,
                    cause: DivergenceCause::IterationBudget {
                        budget: config.max_iterations,
                    },
                });
            }
            *iterations += 1;
            let mut demand = blocking + c_m * (q - 1);
            demand = demand
                .saturating_add(per_hit.saturating_mul(errors.max_hits(w.saturating_add(c_m))));
            for &j in interference {
                let eta = activations[j].eta_plus(w.saturating_add(tau));
                demand = demand.saturating_add(c_max[j].saturating_mul(eta));
            }
            if demand > config.horizon {
                return Err(BusyAbort {
                    w: demand,
                    q,
                    cause: DivergenceCause::HorizonExceeded {
                        horizon: config.horizon,
                    },
                });
            }
            if demand <= w {
                break; // fixpoint reached (demand == w on the way up)
            }
            w = demand;
        }
        out_w.push(w);
        let finish = w + c_m;
        wcrt = wcrt.max(finish.saturating_sub(own.delta_min(q)));
        // Does the busy period extend to the next instance?
        if finish > own.delta_min(q + 1) {
            q += 1;
            if q > config.max_instances {
                return Err(BusyAbort {
                    w,
                    q: q - 1,
                    cause: DivergenceCause::InstanceLimit {
                        limit: config.max_instances,
                    },
                });
            }
        } else {
            return Ok((wcrt, q));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_model::{NoErrors, SporadicErrors};
    use crate::frame::Dlc;
    use crate::message::CanMessage;
    use crate::network::Node;
    use crate::rta::analyze_bus;
    use carta_core::event_model::ActivationKind;

    fn net_with(messages: Vec<CanMessage>) -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        net.add_node(Node::new("A", ControllerType::FullCan));
        net.add_node(Node::new("B", ControllerType::BasicCan));
        for m in messages {
            net.add_message(m);
        }
        net
    }

    fn msg(name: &str, id: u32, dlc: u8, period_ms: u64, jitter_ms: u64, s: usize) -> CanMessage {
        CanMessage::new(
            name,
            CanId::standard(id).expect("valid id"),
            Dlc::new(dlc),
            Time::from_ms(period_ms),
            Time::from_ms(jitter_ms),
            s,
        )
    }

    fn same_rows(a: &BusReport, b: &BusReport) {
        assert_eq!(a.messages.len(), b.messages.len());
        for (x, y) in a.messages.iter().zip(&b.messages) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.id, y.id);
            assert_eq!(x.c_max, y.c_max);
            assert_eq!(x.c_min, y.c_min);
            assert_eq!(x.blocking, y.blocking);
            assert_eq!(x.deadline, y.deadline);
            assert_eq!(x.outcome, y.outcome, "{}", x.name);
            assert_eq!(x.instances, y.instances, "{}", x.name);
        }
    }

    fn with_jitter(net: &CanNetwork, jitter: Time) -> CanNetwork {
        let mut out = net.clone();
        for m in out.messages_mut() {
            let a = m.activation;
            m.activation = EventModel::new(a.kind(), a.period(), jitter, a.dmin());
        }
        out
    }

    #[test]
    fn warm_started_sweep_is_bit_identical_to_cold() {
        let base = net_with(vec![
            msg("a", 0x100, 8, 5, 0, 0),
            msg("b", 0x140, 4, 10, 0, 1),
            msg("c", 0x180, 8, 10, 0, 0),
            msg("d", 0x200, 2, 20, 0, 1),
        ]);
        let config = AnalysisConfig::default();
        let errors = SporadicErrors::new(Time::from_ms(20));
        let compiled = CompiledBus::compile(&base, config.stuffing).expect("valid");
        let mut ws = RtaWorkspace::new();
        // Ascending jitter: every step dominates the previous one, so
        // from the second point on the fixpoints warm-start.
        for (k, us) in [0u64, 200, 500, 1200, 2500].iter().enumerate() {
            let variant = with_jitter(&base, Time::from_us(*us));
            let fast = compiled.solve(&variant, &errors, &config, &mut ws);
            let naive = analyze_bus(&variant, &errors, &config).expect("valid");
            same_rows(&fast, &naive);
            if k > 0 {
                assert!(
                    ws.last_stats().warm_messages > 0,
                    "ascending jitter must warm-start (step {k}): {:?}",
                    ws.last_stats()
                );
            }
        }
        // Descending jitter breaks dominance: the solve must fall back
        // to cold starts and still agree. Only the top-priority fullCAN
        // message keeps its warm start — its interference set is empty,
        // so its demand function never depends on any activation.
        let variant = with_jitter(&base, Time::from_us(100));
        let fast = compiled.solve(&variant, &errors, &config, &mut ws);
        same_rows(
            &fast,
            &analyze_bus(&variant, &errors, &config).expect("valid"),
        );
        assert_eq!(ws.last_stats().warm_messages, 1);
    }

    #[test]
    fn solve_batch_is_bit_identical_to_per_point_solves() {
        let base = net_with(vec![
            msg("a", 0x100, 8, 5, 0, 0),
            msg("b", 0x140, 4, 10, 0, 1),
            msg("c", 0x180, 8, 10, 0, 0),
            msg("d", 0x200, 2, 20, 0, 1),
        ]);
        let config = AnalysisConfig::default();
        let errors = SporadicErrors::new(Time::from_ms(20));
        let compiled = CompiledBus::compile(&base, config.stuffing).expect("valid");
        // Ascending then descending jitter: the batch crosses both the
        // warm-start and the dominance-rejection regimes.
        let points: Vec<SolvePoint> = [0u64, 200, 500, 1200, 2500, 100]
            .iter()
            .map(|&us| SolvePoint::from_network(&with_jitter(&base, Time::from_us(us))))
            .collect();

        let mut ws = RtaWorkspace::new();
        let (batch, stats) = compiled.solve_batch(&points, &errors, &config, &mut ws);
        assert_eq!(batch.len(), points.len());
        assert!(
            stats.warm_messages > 0,
            "ascending jitter prefix must warm-start: {stats:?}"
        );
        assert_eq!(
            stats.warm_messages + stats.cold_messages,
            (points.len() * base.messages().len()) as u64
        );

        // Per-point solves through one workspace see the same warm
        // sequence; fresh-workspace solves pin the cold reference.
        let mut seq_ws = RtaWorkspace::new();
        for (k, (point, from_batch)) in points.iter().zip(&batch).enumerate() {
            let seq = compiled.solve_point(point, &errors, &config, &mut seq_ws);
            same_rows(from_batch, &seq);
            let cold = compiled.solve_point(point, &errors, &config, &mut RtaWorkspace::new());
            same_rows(from_batch, &cold);
            let net_solve = compiled.solve(
                &with_jitter(&base, Time::from_us([0u64, 200, 500, 1200, 2500, 100][k])),
                &errors,
                &config,
                &mut RtaWorkspace::new(),
            );
            same_rows(from_batch, &net_solve);
        }
    }

    #[test]
    fn error_model_change_rejects_warm_state() {
        let base = net_with(vec![
            msg("a", 0x100, 8, 5, 0, 0),
            msg("b", 0x200, 8, 5, 0, 1),
        ]);
        let config = AnalysisConfig::default();
        let compiled = CompiledBus::compile(&base, config.stuffing).expect("valid");
        let mut ws = RtaWorkspace::new();
        compiled.solve(&base, &NoErrors, &config, &mut ws);
        let errors = SporadicErrors::new(Time::from_ms(10));
        let fast = compiled.solve(&base, &errors, &config, &mut ws);
        assert_eq!(ws.last_stats().warm_messages, 0, "error model changed");
        same_rows(&fast, &analyze_bus(&base, &errors, &config).expect("valid"));
    }

    #[test]
    fn reordered_tables_match_a_fresh_compile() {
        let base = net_with(vec![
            msg("a", 0x100, 8, 5, 1, 0),
            msg("b", 0x140, 4, 10, 0, 1),
            msg("c", 0x180, 8, 10, 2, 0),
        ]);
        let config = AnalysisConfig::default();
        let compiled = CompiledBus::compile(&base, config.stuffing).expect("valid");
        let mut permuted = base.clone();
        let (a, c) = (permuted.messages()[0].id, permuted.messages()[2].id);
        permuted.messages_mut()[0].id = c;
        permuted.messages_mut()[2].id = a;
        let reordered = compiled.reordered(&permuted);
        let errors = NoErrors;
        let fast = reordered.solve(&permuted, &errors, &config, &mut RtaWorkspace::new());
        same_rows(
            &fast,
            &analyze_bus(&permuted, &errors, &config).expect("valid"),
        );
        // Names are shared, not re-interned.
        assert!(Arc::ptr_eq(&fast.messages[0].name, &compiled.names[0]));
        // Warm state from the old order must not leak into the new one.
        assert_ne!(reordered.epoch, compiled.epoch);
    }

    #[test]
    fn dominance_gate_matches_eta_plus_pointwise() {
        let p = |period_ms, jitter_ms, dmin_us| {
            EventModel::new(
                ActivationKind::Periodic,
                Time::from_ms(period_ms),
                Time::from_ms(jitter_ms),
                Time::from_us(dmin_us),
            )
        };
        let windows: Vec<Time> = (0..200u64).map(|k| Time::from_us(137 * k)).collect();
        let cases = [
            (p(10, 2, 0), p(10, 0, 0), true),     // jitter grew
            (p(10, 1, 0), p(10, 2, 0), false),    // jitter shrank
            (p(5, 1, 0), p(10, 1, 0), true),      // period shrank
            (p(20, 1, 0), p(10, 1, 0), false),    // period grew
            (p(10, 5, 400), p(10, 2, 500), true), // dmin tightened the cap less
            (p(10, 5, 0), p(10, 2, 500), true),   // cap dropped entirely
            (p(10, 5, 500), p(10, 2, 0), false),  // cap appeared
            (p(10, 2, 300), p(10, 2, 300), true), // identical
        ];
        for (new, old, expect) in cases {
            assert_eq!(eta_dominates(&new, &old), expect, "{new:?} vs {old:?}");
            if eta_dominates(&new, &old) {
                for w in &windows {
                    assert!(
                        new.eta_plus(*w) >= old.eta_plus(*w),
                        "dominance gate admitted a non-dominating pair at {w}: {new:?} vs {old:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn workspace_survives_overload_and_recovers() {
        // 135 bits every 200 us at 500 kbit/s: the bus is overloaded.
        let flood = CanMessage::new(
            "flood",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(8),
            Time::from_us(200),
            Time::ZERO,
            0,
        );
        let net = net_with(vec![flood, msg("victim", 0x200, 8, 10, 0, 1)]);
        let config = AnalysisConfig::default();
        let compiled = CompiledBus::compile(&net, config.stuffing).expect("valid");
        let mut ws = RtaWorkspace::new();
        let first = compiled.solve(&net, &NoErrors, &config, &mut ws);
        assert!(!first.schedulable());
        // Re-solving with the overload-tainted workspace stays exact.
        let second = compiled.solve(&net, &NoErrors, &config, &mut ws);
        same_rows(&first, &second);
        same_rows(
            &second,
            &analyze_bus(&net, &NoErrors, &config).expect("valid"),
        );
    }

    #[test]
    fn compile_rejects_invalid_networks() {
        let empty = CanNetwork::new(500_000);
        assert!(matches!(
            CompiledBus::compile(&empty, StuffingMode::WorstCase),
            Err(AnalysisError::InvalidModel(_))
        ));
    }
}
