//! Convolution-based probabilistic response-time analysis.
//!
//! The deterministic busy-window analysis ([`crate::rta::analyze_bus`],
//! [`CompiledBus::solve`]) brackets every response time with a
//! best/worst-case envelope. This module refines the bracket into a
//! discrete response-time *distribution* per message, in the style of
//! convolution-based probabilistic RTA (Tindell-era stochastic
//! extensions; see "Improved Convolution-Based Analysis for Worst-Case
//! Probability Response Time of CAN", arXiv 2411.05835): the
//! error-free response is a point mass, every potential bus-error hit
//! contributes an independent retransmission mass, and the per-message
//! distribution is the convolution of the two, clamped into the
//! deterministic envelope.
//!
//! # Binning and quantum semantics
//!
//! A [`Pmf`] is a probability mass function over a fixed lattice of
//! time bins. The quantum is chosen per report as the smallest
//! power-of-two multiple of the bus bit time such that the largest
//! worst-case response fits into [`MAX_BINS`] bins. Bin `k` carries the
//! *upper edge* value `k·quantum`: any duration `t` is binned upward
//! (`⌈t/quantum⌉`), so a quantized value never under-states the
//! duration it stands for — quantization is always pessimistic.
//! Consequently [`Pmf::cdf_at`] sums only bins whose upper-edge value
//! is `≤ t` (floor semantics), which makes the reported CDF a *lower*
//! bound on the true probability of meeting any deadline, and the
//! reported deadline-miss probability an *upper* bound.
//!
//! # Dominance guarantee
//!
//! Every component of the convolution is a worst-case quantity: the
//! error-free point mass sits at the deterministic no-error WCRT, each
//! error hit is charged the compiled per-hit constant (error frame plus
//! the longest retransmission in the interference set), and the hit
//! count never exceeds the deterministic error-model bound for the
//! worst-case window. The final clamp into `[BCRT, WCRT]` then makes
//! the guarantee structural: the distribution's support never exceeds
//! the (upward-quantized) analytic worst case, and its CDF at that
//! bound is 1. The `prob-dominates-worst-case` metamorphic law in
//! `carta-testkit` pins exactly this.
//!
//! # Validation strategy
//!
//! Analytic distributions are validated against `carta-sim` Monte-Carlo
//! empirical CDFs: the empirical CDF must lie within the report's
//! stated confidence band — between the pessimistic envelope (all mass
//! at the worst case) and the optimistic envelope (all mass at the best
//! case), widened by a Dvoretzky–Kiefer–Wolfowitz margin for the sample
//! count. See `tests/prob_vs_sim.rs` at the workspace root.

use crate::compiled::{CompiledBus, RtaWorkspace};
use crate::error_model::{ErrorModel, NoErrors};
use crate::frame::StuffingMode;
use crate::message::CanId;
use crate::network::CanNetwork;
use crate::rta::{AnalysisConfig, BusReport};
use carta_core::analysis::{AnalysisError, MessageDiagnostic};
use carta_core::time::Time;
use std::sync::Arc;

/// Upper bound on the number of bins of one [`Pmf`]; the report quantum
/// is doubled (starting from the bus bit time) until the largest
/// worst-case response fits.
pub const MAX_BINS: u64 = 4096;

/// A discrete probability mass function over a fixed time lattice.
///
/// Bin `k` (absolute index, so two [`Pmf`]s with the same quantum share
/// a lattice) carries the upper-edge value `k·quantum`. The mass vector
/// is trimmed: its first and last entries are non-zero (a single-entry
/// vector may hold the whole mass).
#[derive(Debug, Clone, PartialEq)]
pub struct Pmf {
    quantum: Time,
    /// Absolute lattice index of `mass[0]`.
    offset: u64,
    mass: Vec<f64>,
}

/// Upward quantization: the smallest lattice index whose upper-edge
/// value is `≥ t`.
fn bin_up(t: Time, quantum: Time) -> u64 {
    t.div_ceil(quantum)
}

impl Pmf {
    /// A point mass at `value`, quantized upward onto the lattice.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn point(value: Time, quantum: Time) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        Pmf {
            quantum,
            offset: bin_up(value, quantum),
            mass: vec![1.0],
        }
    }

    /// The distribution of `K·step` for `K ~ Binomial(trials, p)`: the
    /// total error-retransmission time when each of `trials` potential
    /// hits lands independently with probability `p`.
    ///
    /// Masses are computed by the multiplicative recurrence and
    /// re-normalized; if the recurrence degenerates (extreme `trials`
    /// underflowing `f64`), the whole mass is placed pessimistically at
    /// `trials·step`.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero or `p` is outside `[0, 1]`.
    pub fn binomial(trials: u64, p: f64, step: Time, quantum: Time) -> Self {
        assert!(!quantum.is_zero(), "quantum must be positive");
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if trials == 0 || p <= f64::EPSILON {
            return Pmf::point(Time::ZERO, quantum);
        }
        if p >= 1.0 - f64::EPSILON {
            return Pmf::point(step.saturating_mul(trials), quantum);
        }
        let top = bin_up(step.saturating_mul(trials), quantum);
        let mut mass = vec![0.0; (top + 1) as usize];
        let odds = p / (1.0 - p);
        let mut term = (1.0 - p).powi(i32::try_from(trials).unwrap_or(i32::MAX));
        let mut total = 0.0;
        for k in 0..=trials {
            let idx = bin_up(step.saturating_mul(k), quantum) as usize;
            mass[idx] += term;
            total += term;
            term *= odds * ((trials - k) as f64) / ((k + 1) as f64);
        }
        if total < 0.5 {
            // Underflowed start term: fall back to the sound pessimistic
            // degenerate distribution rather than a mass-less one.
            return Pmf::point(step.saturating_mul(trials), quantum);
        }
        for m in &mut mass {
            *m /= total;
        }
        Pmf {
            quantum,
            offset: 0,
            mass,
        }
        .trimmed()
    }

    /// Drops zero-mass margins (keeps at least one entry).
    fn trimmed(mut self) -> Self {
        let first = self.mass.iter().position(|&m| m > 0.0).unwrap_or(0);
        let last = self
            .mass
            .iter()
            .rposition(|&m| m > 0.0)
            .unwrap_or(self.mass.len() - 1);
        self.mass.drain(last + 1..);
        self.mass.drain(..first);
        self.offset += first as u64;
        if self.mass.is_empty() {
            self.mass.push(0.0);
        }
        self
    }

    /// The lattice quantum.
    pub fn quantum(&self) -> Time {
        self.quantum
    }

    /// Number of (contiguous) bins carried.
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// `true` when no bin is carried (never produced by this module's
    /// constructors).
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// Total carried mass (1 up to rounding for every constructor).
    pub fn total_mass(&self) -> f64 {
        self.mass.iter().sum()
    }

    /// Iterates `(upper-edge value, mass)` over the carried bins.
    pub fn bins(&self) -> impl Iterator<Item = (Time, f64)> + '_ {
        self.mass
            .iter()
            .enumerate()
            .map(move |(i, &m)| (self.quantum * (self.offset + i as u64), m))
    }

    /// The distribution of the sum of two independent durations: exact
    /// discrete convolution (lattice indices add, so the operation is
    /// commutative and associative up to `f64` rounding).
    ///
    /// # Panics
    ///
    /// Panics if the quanta differ.
    pub fn convolve(&self, other: &Pmf) -> Pmf {
        assert_eq!(
            self.quantum, other.quantum,
            "convolution requires a shared lattice"
        );
        let mut mass = vec![0.0; self.mass.len() + other.mass.len() - 1];
        for (i, &a) in self.mass.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            for (j, &b) in other.mass.iter().enumerate() {
                mass[i + j] += a * b;
            }
        }
        Pmf {
            quantum: self.quantum,
            offset: self.offset + other.offset,
            mass,
        }
        .trimmed()
    }

    /// Moves all mass outside `[lo, hi]` (both quantized upward) onto
    /// the nearest bound bin; total mass is preserved. This is the
    /// dominance clamp: afterwards the support lies within the
    /// deterministic envelope.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_to(&self, lo: Time, hi: Time) -> Pmf {
        assert!(lo <= hi, "clamp bounds out of order");
        let lo_bin = bin_up(lo, self.quantum);
        let hi_bin = bin_up(hi, self.quantum).max(lo_bin);
        let mut mass = vec![0.0; (hi_bin - lo_bin + 1) as usize];
        for (i, &m) in self.mass.iter().enumerate() {
            let bin = (self.offset + i as u64).clamp(lo_bin, hi_bin);
            mass[(bin - lo_bin) as usize] += m;
        }
        Pmf {
            quantum: self.quantum,
            offset: lo_bin,
            mass,
        }
        .trimmed()
    }

    /// `P[T ≤ t]` under the pessimistic upper-edge convention: only
    /// bins whose value `k·quantum` is `≤ t` count, so the result
    /// never over-states the probability of meeting a deadline.
    pub fn cdf_at(&self, t: Time) -> f64 {
        let cap = t.div_floor(self.quantum);
        if cap < self.offset {
            return 0.0;
        }
        let upto = ((cap - self.offset + 1) as usize).min(self.mass.len());
        self.mass[..upto].iter().sum()
    }

    /// The `p`-quantile: the smallest bin value whose CDF reaches `p`
    /// (up to a `1e-12` rounding allowance). For `p` above the total
    /// mass, the support maximum.
    pub fn quantile(&self, p: f64) -> Time {
        let mut cum = 0.0;
        for (value, m) in self.bins() {
            cum += m;
            if cum + 1e-12 >= p {
                return value;
            }
        }
        self.support_max()
    }

    /// Smallest carried bin value.
    pub fn support_min(&self) -> Time {
        self.quantum * self.offset
    }

    /// Largest carried bin value.
    pub fn support_max(&self) -> Time {
        self.quantum * (self.offset + self.mass.len() as u64 - 1)
    }
}

/// The probabilistic verdict for one bounded message: the clamped
/// response-time distribution plus the deterministic envelope it lives
/// in and the derived headline figures.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbDist {
    /// The response-time distribution, clamped into `[bcrt, wcrt]`.
    pub pmf: Pmf,
    /// Deterministic best-case response time (optimistic envelope).
    pub bcrt: Time,
    /// Deterministic worst-case response time (pessimistic envelope).
    pub wcrt: Time,
    /// Upper bound on the deadline-miss probability
    /// (`1 − cdf(deadline)`, forced to 0 when the deterministic WCRT
    /// already meets the deadline — quantization never overrules a
    /// deterministic guarantee).
    pub miss_probability: f64,
    /// Median response time.
    pub p50: Time,
    /// 95th-percentile response time.
    pub p95: Time,
    /// 99th-percentile response time.
    pub p99: Time,
}

/// Probabilistic outcome per message; overloads mirror the
/// deterministic diagnostic (an unbounded response has no
/// distribution).
#[derive(Debug, Clone, PartialEq)]
pub enum ProbOutcome {
    /// A bounded message with its distribution.
    Dist(ProbDist),
    /// The deterministic analysis diverged; the diagnostic is carried
    /// through and the message counts as missing with probability 1.
    Overload(MessageDiagnostic),
}

impl ProbOutcome {
    /// The distribution, when bounded.
    pub fn dist(&self) -> Option<&ProbDist> {
        match self {
            ProbOutcome::Dist(d) => Some(d),
            ProbOutcome::Overload(_) => None,
        }
    }

    /// Deadline-miss probability (1 for overloads).
    pub fn miss_probability(&self) -> f64 {
        match self {
            ProbOutcome::Dist(d) => d.miss_probability,
            ProbOutcome::Overload(_) => 1.0,
        }
    }
}

/// Probabilistic per-message report row.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbMessageReport {
    /// Index of the message in the network.
    pub index: usize,
    /// Message name (interned, shared with the compiled tables).
    pub name: Arc<str>,
    /// Message identifier.
    pub id: CanId,
    /// Resolved deadline the miss probability is measured against.
    pub deadline: Time,
    /// Probabilistic outcome.
    pub outcome: ProbOutcome,
}

/// The probabilistic analysis of a whole bus: per-message
/// distributions on one shared quantum lattice.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbBusReport {
    /// Per-message rows, in network order.
    pub messages: Vec<ProbMessageReport>,
    /// The shared lattice quantum of every distribution.
    pub quantum: Time,
    /// `describe()` of the error model analyzed under.
    pub error_model: String,
    /// Stuffing mode analyzed under.
    pub stuffing: StuffingMode,
    /// Bus backend analyzed under.
    pub backend: crate::backend::BackendConfig,
}

impl ProbBusReport {
    /// Sum of per-message deadline-miss probabilities — the expected
    /// number of lossy messages.
    pub fn expected_missed(&self) -> f64 {
        self.messages
            .iter()
            .map(|m| m.outcome.miss_probability())
            .sum()
    }

    /// Messages that miss with (numerical) certainty, including
    /// overloads.
    pub fn certain_missed(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.outcome.miss_probability() >= 1.0 - 1e-9)
            .count()
    }

    /// Messages with any positive miss probability, including
    /// overloads — matches the deterministic missed count.
    pub fn possible_missed(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.outcome.miss_probability() > 1e-12)
            .count()
    }

    /// Looks a row up by message name.
    pub fn by_name(&self, name: &str) -> Option<&ProbMessageReport> {
        self.messages.iter().find(|m| &*m.name == name)
    }
}

/// Picks the report quantum: the smallest power-of-two multiple of the
/// bus bit time `tau` such that `bound` fits into [`MAX_BINS`] bins.
fn pick_quantum(tau: Time, bound: Time) -> Time {
    let mut q = if tau.is_zero() { Time::from_ns(1) } else { tau };
    while bound.div_ceil(q) > MAX_BINS {
        q = q.saturating_mul(2);
    }
    q
}

/// Builds the probabilistic report from the compiled tables and the two
/// deterministic solves it refines: `base` under [`NoErrors`] and
/// `full` under `errors` (both on the same compiled topology). This is
/// the memoizable core — the engine's evaluator feeds it cached
/// deterministic reports.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidModel`] if the two reports do not
/// describe the compiled topology.
pub fn prob_from_reports(
    compiled: &CompiledBus,
    base: &BusReport,
    full: &BusReport,
    errors: &dyn ErrorModel,
) -> Result<ProbBusReport, AnalysisError> {
    let n = compiled.len();
    if base.messages.len() != n || full.messages.len() != n {
        return Err(AnalysisError::InvalidModel(
            "probabilistic analysis needs reports of the compiled topology".into(),
        ));
    }
    let bound = full
        .messages
        .iter()
        .filter_map(|m| m.outcome.wcrt())
        .max()
        .unwrap_or(Time::ZERO);
    let quantum = pick_quantum(compiled.tau(), bound);
    // Long-window hit rate: hits per nanosecond from the model's own
    // 10 s bound, used to thin the worst-case hit count into a
    // per-window landing probability.
    let horizon = Time::from_s(10);
    let rate = errors.max_hits(horizon) as f64 / horizon.as_ns() as f64;

    let mut messages = Vec::with_capacity(n);
    for (i, row) in full.messages.iter().enumerate() {
        let outcome = match row.outcome.wcrt().zip(row.outcome.bcrt()) {
            None => ProbOutcome::Overload(row.outcome.diagnostic().cloned().unwrap_or_else(|| {
                MessageDiagnostic {
                    entity: row.name.clone(),
                    priority_level: compiled.hp_sets()[i].len(),
                    busy_window: Time::ZERO,
                    instances: 0,
                    interference: Vec::new(),
                    cause: carta_core::analysis::DivergenceCause::HorizonExceeded {
                        horizon: Time::ZERO,
                    },
                }
            })),
            Some((wcrt, bcrt)) => {
                // The error-free response: the base solve's WCRT when
                // bounded (it always is when the dominating full solve
                // is), defensively the full WCRT otherwise.
                let err_free = base.messages[i].outcome.wcrt().unwrap_or(wcrt).min(wcrt);
                let trials = errors.max_hits(wcrt);
                let p = if trials == 0 {
                    0.0
                } else {
                    (rate * wcrt.as_ns() as f64 / trials as f64).clamp(0.0, 1.0)
                };
                let hits = Pmf::binomial(trials, p, compiled.per_hit_vec()[i], quantum);
                let pmf = Pmf::point(err_free, quantum)
                    .convolve(&hits)
                    .clamp_to(bcrt, wcrt);
                let miss_probability = if wcrt <= row.deadline {
                    0.0
                } else {
                    (1.0 - pmf.cdf_at(row.deadline)).clamp(0.0, 1.0)
                };
                ProbOutcome::Dist(ProbDist {
                    p50: pmf.quantile(0.50),
                    p95: pmf.quantile(0.95),
                    p99: pmf.quantile(0.99),
                    miss_probability,
                    bcrt,
                    wcrt,
                    pmf,
                })
            }
        };
        messages.push(ProbMessageReport {
            index: i,
            name: compiled.names()[i].clone(),
            id: compiled.ids()[i],
            deadline: row.deadline,
            outcome,
        });
    }
    Ok(ProbBusReport {
        messages,
        quantum,
        error_model: errors.describe(),
        stuffing: full.stuffing,
        backend: compiled.backend(),
    })
}

/// Self-contained probabilistic analysis of a network: compiles the
/// bus, runs the no-error and full deterministic solves, and refines
/// them into distributions. The engine's evaluator offers the cached
/// equivalent.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidModel`] for networks that fail
/// validation.
pub fn prob_analyze(
    net: &CanNetwork,
    errors: &dyn ErrorModel,
    config: &AnalysisConfig,
) -> Result<ProbBusReport, AnalysisError> {
    let compiled = CompiledBus::compile(net, config.stuffing)?;
    let mut ws = RtaWorkspace::new();
    let base = compiled.solve(net, &NoErrors, config, &mut ws);
    let full = compiled.solve(net, errors, config, &mut ws);
    prob_from_reports(&compiled, &base, &full, errors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerType;
    use crate::error_model::SporadicErrors;
    use crate::frame::Dlc;
    use crate::message::CanMessage;
    use crate::network::Node;

    fn q() -> Time {
        Time::from_us(2)
    }

    #[test]
    fn point_mass_quantizes_upward() {
        let p = Pmf::point(Time::from_us(3), q());
        assert_eq!(p.support_min(), Time::from_us(4));
        assert_eq!(p.support_max(), Time::from_us(4));
        assert!((p.total_mass() - 1.0).abs() < 1e-12);
        assert_eq!(p.cdf_at(Time::from_us(3)), 0.0, "upper edge is 4 us");
        assert_eq!(p.cdf_at(Time::from_us(4)), 1.0);
        assert_eq!(p.quantile(0.5), Time::from_us(4));
    }

    #[test]
    fn convolution_adds_supports() {
        let a = Pmf::point(Time::from_us(4), q());
        let b = Pmf::binomial(2, 0.5, Time::from_us(2), q());
        let c = a.convolve(&b);
        assert_eq!(c.support_min(), Time::from_us(4));
        assert_eq!(c.support_max(), Time::from_us(8));
        assert!((c.total_mass() - 1.0).abs() < 1e-9);
        assert!((c.cdf_at(Time::from_us(4)) - 0.25).abs() < 1e-9);
        assert!((c.cdf_at(Time::from_us(6)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn binomial_degenerate_edges() {
        let zero = Pmf::binomial(5, 0.0, Time::from_us(2), q());
        assert_eq!(zero.support_max(), Time::ZERO);
        let one = Pmf::binomial(5, 1.0, Time::from_us(2), q());
        assert_eq!(one.support_min(), Time::from_us(10));
        let none = Pmf::binomial(0, 0.7, Time::from_us(2), q());
        assert_eq!(none.support_max(), Time::ZERO);
    }

    #[test]
    fn clamp_preserves_mass_and_bounds_support() {
        let b = Pmf::binomial(10, 0.5, Time::from_us(2), q());
        let c = b.clamp_to(Time::from_us(6), Time::from_us(12));
        assert!((c.total_mass() - 1.0).abs() < 1e-9);
        assert!(c.support_min() >= Time::from_us(6));
        assert!(c.support_max() <= Time::from_us(12));
        assert!((c.cdf_at(Time::from_us(12)) - 1.0).abs() < 1e-9);
    }

    fn small_net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        let b = net.add_node(Node::new("B", ControllerType::BasicCan));
        net.add_message(CanMessage::new(
            "hi",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(8),
            Time::from_ms(5),
            Time::ZERO,
            a,
        ));
        net.add_message(CanMessage::new(
            "lo",
            CanId::standard(0x200).expect("valid"),
            Dlc::new(4),
            Time::from_ms(10),
            Time::from_ms(1),
            b,
        ));
        net
    }

    #[test]
    fn prob_report_is_dominated_by_the_deterministic_envelope() {
        let net = small_net();
        let config = AnalysisConfig::default();
        let errors = SporadicErrors::new(Time::from_ms(10));
        let det = crate::rta::analyze_bus(&net, &errors, &config).expect("valid");
        let prob = prob_analyze(&net, &errors, &config).expect("valid");
        assert_eq!(prob.messages.len(), det.messages.len());
        for (p, d) in prob.messages.iter().zip(&det.messages) {
            let dist = p.outcome.dist().expect("bounded");
            let wcrt = d.outcome.wcrt().expect("bounded");
            assert_eq!(dist.wcrt, wcrt);
            assert!(dist.pmf.support_max() < wcrt + prob.quantum);
            assert!((dist.pmf.cdf_at(dist.pmf.support_max()) - 1.0).abs() < 1e-9);
            assert!(dist.pmf.support_min() >= d.outcome.bcrt().expect("bounded"));
            assert!(dist.p50 <= dist.p95 && dist.p95 <= dist.p99);
            assert!(dist.miss_probability >= 0.0 && dist.miss_probability <= 1.0);
        }
    }

    #[test]
    fn no_errors_collapses_to_the_worst_case_point() {
        let net = small_net();
        let config = AnalysisConfig::default();
        let prob = prob_analyze(&net, &NoErrors, &config).expect("valid");
        for m in &prob.messages {
            let dist = m.outcome.dist().expect("bounded");
            assert_eq!(dist.pmf.len(), 1, "single point mass");
            assert_eq!(dist.miss_probability, 0.0);
        }
        assert_eq!(prob.possible_missed(), 0);
        assert_eq!(prob.expected_missed(), 0.0);
    }

    #[test]
    fn deterministic_ok_never_reports_a_miss() {
        let net = small_net();
        let config = AnalysisConfig::default();
        let errors = SporadicErrors::new(Time::from_ms(5));
        let det = crate::rta::analyze_bus(&net, &errors, &config).expect("valid");
        let prob = prob_analyze(&net, &errors, &config).expect("valid");
        for (p, d) in prob.messages.iter().zip(&det.messages) {
            if !d.misses_deadline() {
                assert_eq!(p.outcome.miss_probability(), 0.0, "{}", p.name);
            }
        }
    }

    #[test]
    fn quantum_respects_the_bin_cap() {
        let net = small_net();
        let config = AnalysisConfig::default();
        let errors = SporadicErrors::new(Time::from_ms(10));
        let prob = prob_analyze(&net, &errors, &config).expect("valid");
        for m in &prob.messages {
            let dist = m.outcome.dist().expect("bounded");
            assert!(dist.pmf.len() as u64 <= MAX_BINS + 1);
            assert_eq!(dist.pmf.quantum(), prob.quantum);
        }
    }
}
