//! Bus-error models for CAN response-time analysis.
//!
//! CAN recovers from transmission errors by signalling an error frame
//! and automatically retransmitting the damaged frame. The analysis
//! accounts for this with an overhead function `E(Δt)` added to every
//! busy-window equation; `E` is driven by a bound on the number of
//! error hits in a window, for which the paper cites two practically
//! useful models:
//!
//! * **sporadic** errors — at most one hit per error interval, akin to
//!   an MTBF figure (Tindell & Burns, ref. \[7\]),
//! * **burst** errors — clusters of hits in quick succession with a
//!   minimum distance between clusters (Punnekkat et al., ref. \[8\]).

use carta_core::time::Time;
use std::fmt::Debug;

/// A worst-case bound on the number of bus-error hits in a time window.
///
/// Implementors must be *monotone*: a longer window can never see fewer
/// hits. The provided models are all monotone by construction, and the
/// property is exercised by this crate's property tests.
pub trait ErrorModel: Debug + Send + Sync {
    /// Maximum number of error hits in any half-open window of length
    /// `window`.
    fn max_hits(&self, window: Time) -> u64;

    /// Short human-readable description for reports.
    fn describe(&self) -> String;
}

/// An error-free bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoErrors;

impl ErrorModel for NoErrors {
    fn max_hits(&self, _window: Time) -> u64 {
        0
    }

    fn describe(&self) -> String {
        "no errors".into()
    }
}

/// Sporadic errors: at most one hit every `interval` (MTBF-style), plus
/// an optional pessimistic startup hit allowance.
///
/// The bound is `hits(Δt) = initial + ⌈Δt / interval⌉`, i.e. one hit may
/// always strike "right now" and then once per interval — the standard
/// worst-case phasing of Tindell & Burns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SporadicErrors {
    interval: Time,
    initial: u64,
}

impl SporadicErrors {
    /// Creates a sporadic error model with the given minimum distance
    /// between hits.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: Time) -> Self {
        Self::with_initial(interval, 0)
    }

    /// Like [`SporadicErrors::new`] with `initial` extra hits allowed at
    /// the start of any window.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_initial(interval: Time, initial: u64) -> Self {
        assert!(!interval.is_zero(), "error interval must be positive");
        SporadicErrors { interval, initial }
    }

    /// The minimum distance between hits.
    pub fn interval(&self) -> Time {
        self.interval
    }
}

impl ErrorModel for SporadicErrors {
    fn max_hits(&self, window: Time) -> u64 {
        if window.is_zero() {
            return 0;
        }
        self.initial + window.div_ceil(self.interval)
    }

    fn describe(&self) -> String {
        format!("sporadic errors every {}", self.interval)
    }
}

/// Burst errors: up to `burst_len` hits spaced `intra_gap` apart within
/// a burst; bursts themselves at least `inter_burst` apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstErrors {
    burst_len: u64,
    intra_gap: Time,
    inter_burst: Time,
}

impl BurstErrors {
    /// Creates a burst error model.
    ///
    /// # Panics
    ///
    /// Panics if `burst_len` is zero, `intra_gap` is zero, or the burst
    /// span `(burst_len − 1) · intra_gap` does not fit into
    /// `inter_burst`.
    pub fn new(burst_len: u64, intra_gap: Time, inter_burst: Time) -> Self {
        assert!(burst_len > 0, "burst length must be positive");
        assert!(!intra_gap.is_zero(), "intra-burst gap must be positive");
        assert!(
            intra_gap.saturating_mul(burst_len - 1) < inter_burst,
            "burst span must fit into the inter-burst distance"
        );
        BurstErrors {
            burst_len,
            intra_gap,
            inter_burst,
        }
    }

    /// Hits per burst.
    pub fn burst_len(&self) -> u64 {
        self.burst_len
    }

    /// Distance between hits within a burst.
    pub fn intra_gap(&self) -> Time {
        self.intra_gap
    }

    /// Minimum distance between burst starts.
    pub fn inter_burst(&self) -> Time {
        self.inter_burst
    }
}

impl ErrorModel for BurstErrors {
    fn max_hits(&self, window: Time) -> u64 {
        if window.is_zero() {
            return 0;
        }
        // Worst case: a burst starts right at the window start, further
        // bursts every `inter_burst`.
        let full_bursts = window.div_floor(self.inter_burst);
        let remainder = window - self.inter_burst * full_bursts;
        let partial = if remainder.is_zero() {
            0
        } else {
            remainder.div_ceil(self.intra_gap).min(self.burst_len)
        };
        full_bursts * self.burst_len + partial
    }

    fn describe(&self) -> String {
        format!(
            "bursts of {} errors ({} apart) every {}",
            self.burst_len, self.intra_gap, self.inter_burst
        )
    }
}

/// The sum of two error models (e.g. background sporadic errors plus
/// occasional bursts). The sum of two monotone bounds is a sound,
/// monotone bound for the combined process.
#[derive(Debug, Clone, Copy)]
pub struct CombinedErrors<A, B> {
    first: A,
    second: B,
}

impl<A: ErrorModel, B: ErrorModel> CombinedErrors<A, B> {
    /// Combines two error models additively.
    pub fn new(first: A, second: B) -> Self {
        CombinedErrors { first, second }
    }
}

impl<A: ErrorModel, B: ErrorModel> ErrorModel for CombinedErrors<A, B> {
    fn max_hits(&self, window: Time) -> u64 {
        self.first.max_hits(window) + self.second.max_hits(window)
    }

    fn describe(&self) -> String {
        format!("{} + {}", self.first.describe(), self.second.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_errors_is_zero_everywhere() {
        assert_eq!(NoErrors.max_hits(Time::ZERO), 0);
        assert_eq!(NoErrors.max_hits(Time::from_s(100)), 0);
        assert_eq!(NoErrors.describe(), "no errors");
    }

    #[test]
    fn sporadic_counts_one_immediate_hit() {
        let m = SporadicErrors::new(Time::from_ms(10));
        assert_eq!(m.max_hits(Time::ZERO), 0);
        assert_eq!(m.max_hits(Time::from_us(1)), 1);
        assert_eq!(m.max_hits(Time::from_ms(10)), 1);
        assert_eq!(m.max_hits(Time::from_ms(10) + Time::from_ns(1)), 2);
        assert_eq!(m.max_hits(Time::from_ms(95)), 10);
    }

    #[test]
    fn sporadic_initial_hits() {
        let m = SporadicErrors::with_initial(Time::from_ms(10), 2);
        assert_eq!(m.max_hits(Time::from_us(1)), 3);
        assert_eq!(m.max_hits(Time::ZERO), 0);
    }

    #[test]
    fn burst_counts_cluster_then_gap() {
        // 3 hits 100 us apart, bursts every 10 ms.
        let m = BurstErrors::new(3, Time::from_us(100), Time::from_ms(10));
        assert_eq!(m.max_hits(Time::ZERO), 0);
        assert_eq!(m.max_hits(Time::from_us(1)), 1);
        assert_eq!(m.max_hits(Time::from_us(100)), 1);
        assert_eq!(m.max_hits(Time::from_us(101)), 2);
        assert_eq!(m.max_hits(Time::from_us(201)), 3);
        // Whole burst consumed; no more hits until the next burst.
        assert_eq!(m.max_hits(Time::from_ms(9)), 3);
        assert_eq!(m.max_hits(Time::from_ms(10) + Time::from_us(1)), 4);
        assert_eq!(m.max_hits(Time::from_ms(20) + Time::from_us(150)), 8);
    }

    #[test]
    fn burst_dominates_sporadic_at_same_average_rate() {
        // Same long-run rate (3 per 10 ms vs 1 per 3.33 ms), but the
        // burst model hits harder in short windows — exactly why the
        // paper's worst-case curve uses bursts.
        let burst = BurstErrors::new(3, Time::from_us(100), Time::from_ms(10));
        let sporadic = SporadicErrors::new(Time::from_us(3334));
        let short = Time::from_us(250);
        assert!(burst.max_hits(short) > sporadic.max_hits(short));
    }

    #[test]
    fn combined_adds_hits() {
        let m = CombinedErrors::new(
            SporadicErrors::new(Time::from_ms(10)),
            BurstErrors::new(2, Time::from_us(100), Time::from_ms(50)),
        );
        assert_eq!(
            m.max_hits(Time::from_ms(1)),
            1 + 2 // one sporadic + full burst
        );
        assert!(m.describe().contains("+"));
    }

    #[test]
    #[should_panic(expected = "burst span must fit")]
    fn burst_span_validation() {
        let _ = BurstErrors::new(100, Time::from_ms(1), Time::from_ms(10));
    }

    proptest! {
        #[test]
        fn sporadic_monotone(
            interval in 1u64..1_000_000,
            a in 0u64..10_000_000,
            b in 0u64..10_000_000,
        ) {
            let m = SporadicErrors::new(Time::from_ns(interval));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.max_hits(Time::from_ns(lo)) <= m.max_hits(Time::from_ns(hi)));
        }

        #[test]
        fn burst_monotone(
            len in 1u64..10,
            gap in 1u64..1_000,
            extra in 1u64..100_000,
            a in 0u64..10_000_000,
            b in 0u64..10_000_000,
        ) {
            let inter = Time::from_ns(gap * (len - 1) + extra);
            let m = BurstErrors::new(len, Time::from_ns(gap), inter);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m.max_hits(Time::from_ns(lo)) <= m.max_hits(Time::from_ns(hi)));
        }

        #[test]
        fn burst_long_run_rate_correct(
            len in 1u64..10,
            gap in 1u64..1_000,
            extra in 1u64..100_000,
            periods in 1u64..50,
        ) {
            let inter = Time::from_ns(gap * (len - 1) + extra);
            let m = BurstErrors::new(len, Time::from_ns(gap), inter);
            // Over k whole inter-burst periods the count is exactly k bursts
            // (plus at most one extra burst from the window-aligned start).
            let hits = m.max_hits(inter * periods);
            prop_assert!(hits >= periods * len);
            prop_assert!(hits <= (periods + 1) * len);
        }
    }
}
