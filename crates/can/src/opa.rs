//! Audsley's Optimal Priority Assignment (OPA) for CAN identifiers.
//!
//! A classical, deterministic baseline for the paper's Section 4.3
//! optimization experiment: priorities are assigned from the lowest
//! level upward; at each level *any* message that is schedulable with
//! all still-unassigned messages above it may take the level. The
//! algorithm is **optimal** for analyses whose verdict depends only on
//! the *sets* of higher- and lower-priority messages — which holds for
//! the busy-window analysis in [`crate::rta`] (interference from the
//! hp-set, blocking from the lp-set, error retransmission from the
//! hp-set maximum).
//!
//! OPA decides *feasibility* optimally but, unlike the SPEA2 search of
//! `carta-optim`, optimizes nothing beyond it (no robustness margins,
//! no multi-point trade-offs) — exactly the comparison the benches in
//! `carta-bench` draw.

use crate::error_model::ErrorModel;
use crate::frame::bit_time;
use crate::message::CanId;
use crate::network::CanNetwork;
use crate::rta::{c_max_vector, wcrt_for_sets, AnalysisConfig};
use carta_core::analysis::AnalysisError;

/// The result of a successful OPA run: `order[k]` is the index of the
/// message that receives the `k`-th **strongest** identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriorityOrder(Vec<usize>);

impl PriorityOrder {
    /// The strongest-first message ordering.
    pub fn strongest_first(&self) -> &[usize] {
        &self.0
    }

    /// Applies the order to a network by redistributing its existing
    /// identifier pool (smallest arbitration key to `order\[0\]`, etc.),
    /// exactly like the GA in `carta-optim` does.
    ///
    /// # Panics
    ///
    /// Panics if the order length does not match the network.
    pub fn apply(&self, net: &CanNetwork) -> CanNetwork {
        assert_eq!(self.0.len(), net.messages().len(), "order/network mismatch");
        let mut pool: Vec<CanId> = net.messages().iter().map(|m| m.id).collect();
        pool.sort_by_key(|id| id.arbitration_key());
        let mut out = net.clone();
        for (rank, &msg) in self.0.iter().enumerate() {
            out.messages_mut()[msg].id = pool[rank];
        }
        out
    }
}

/// Runs Audsley's algorithm on `net` (deadlines as resolved by each
/// message's policy). Returns `None` if no fixed-priority order can
/// make every message meet its deadline under this analysis — by OPA's
/// optimality, *no* identifier assignment can.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidModel`] if the network fails
/// validation.
pub fn audsley_assignment(
    net: &CanNetwork,
    errors: &dyn ErrorModel,
    config: &AnalysisConfig,
) -> Result<Option<PriorityOrder>, AnalysisError> {
    net.validate()
        .map_err(|e| AnalysisError::InvalidModel(e.to_string()))?;
    let n = net.messages().len();
    let c_max = c_max_vector(net, config.stuffing);
    let tau = bit_time(net.bit_rate());
    let deadlines: Vec<_> = net
        .messages()
        .iter()
        .map(|m| m.resolved_deadline())
        .collect();

    let mut unassigned: Vec<usize> = (0..n).collect();
    let mut assigned_low: Vec<usize> = Vec::new(); // filled lowest-first

    // OPA probes many candidate assignments; its fixpoint iterations are
    // not part of the `rta.iterations` budget reported for analyses.
    let mut probe_iterations = 0u64;
    for _level in (0..n).rev() {
        let mut chosen = None;
        for (pos, &candidate) in unassigned.iter().enumerate() {
            let hp: Vec<usize> = unassigned
                .iter()
                .copied()
                .filter(|&j| j != candidate)
                .collect();
            let ok = wcrt_for_sets(
                net,
                &c_max,
                candidate,
                &hp,
                &assigned_low,
                tau,
                errors,
                config,
                &mut probe_iterations,
            )
            .is_ok_and(|(wcrt, _)| wcrt <= deadlines[candidate]);
            if ok {
                chosen = Some(pos);
                break;
            }
        }
        match chosen {
            Some(pos) => {
                let msg = unassigned.remove(pos);
                assigned_low.push(msg);
            }
            None => return Ok(None),
        }
    }
    assigned_low.reverse(); // strongest first
    Ok(Some(PriorityOrder(assigned_low)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerType;
    use crate::error_model::{NoErrors, SporadicErrors};
    use crate::frame::Dlc;
    use crate::message::CanMessage;
    use crate::network::Node;
    use crate::rta::analyze_bus;
    use carta_core::time::Time;

    fn inverted_net(rate: u64) -> CanNetwork {
        let mut net = CanNetwork::new(rate);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        // Slowest message gets the strongest identifier (bad).
        for (k, period) in [100u64, 50, 20, 10, 5].into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::from_ms(period / 5),
                a,
            ));
        }
        net
    }

    #[test]
    fn repairs_an_inverted_assignment() {
        let net = inverted_net(125_000);
        let before = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        assert!(!before.schedulable(), "test net must start unschedulable");

        let order = audsley_assignment(&net, &NoErrors, &AnalysisConfig::default())
            .expect("valid")
            .expect("feasible order exists");
        let fixed = order.apply(&net);
        fixed.validate().expect("still valid");
        let after = analyze_bus(&fixed, &NoErrors, &AnalysisConfig::default()).expect("valid");
        assert!(after.schedulable(), "OPA order must be schedulable");
    }

    #[test]
    fn reports_infeasibility() {
        // 5 frames of 8 bytes every 5 ms on 125 kbit/s: 108 % load —
        // no priority order helps.
        let mut net = CanNetwork::new(125_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        for k in 0..5u32 {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + k).expect("valid"),
                Dlc::new(8),
                Time::from_ms(5),
                Time::ZERO,
                a,
            ));
        }
        let order = audsley_assignment(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        assert!(order.is_none());
    }

    #[test]
    fn order_is_set_based_hence_error_model_aware() {
        let net = inverted_net(250_000);
        let calm = audsley_assignment(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let stormy = audsley_assignment(
            &net,
            &SporadicErrors::new(Time::from_ms(2)),
            &AnalysisConfig::default(),
        )
        .expect("valid");
        // Both may succeed, but the stormy one must also verify under
        // its error model end to end.
        if let Some(order) = stormy {
            let fixed = order.apply(&net);
            let rep = analyze_bus(
                &fixed,
                &SporadicErrors::new(Time::from_ms(2)),
                &AnalysisConfig::default(),
            )
            .expect("valid");
            assert!(rep.schedulable());
        }
        assert!(calm.is_some(), "error-free case must be feasible");
    }

    #[test]
    fn apply_preserves_the_id_pool() {
        let net = inverted_net(250_000);
        let order = audsley_assignment(&net, &NoErrors, &AnalysisConfig::default())
            .expect("valid")
            .expect("feasible");
        let fixed = order.apply(&net);
        let mut before: Vec<u32> = net.messages().iter().map(|m| m.id.raw()).collect();
        let mut after: Vec<u32> = fixed.messages().iter().map(|m| m.id.raw()).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        assert_eq!(order.strongest_first().len(), 5);
    }

    #[test]
    fn invalid_network_rejected() {
        let net = CanNetwork::new(500_000);
        assert!(audsley_assignment(&net, &NoErrors, &AnalysisConfig::default()).is_err());
    }
}
