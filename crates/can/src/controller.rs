//! CAN controller (interface) types.
//!
//! The paper (Sec. 3.2) lists the controller type among the inputs a
//! reliable analysis needs: it determines the order in which a node's
//! own messages reach the bus and thus how much *extra* local blocking
//! a message can suffer on top of the protocol's one-frame
//! non-preemption blocking.

use std::fmt;

/// TX-path architecture of a node's CAN controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ControllerType {
    /// One TX buffer per message ("full CAN"): the node always offers
    /// its highest-priority pending message for arbitration; no local
    /// priority inversion.
    #[default]
    FullCan,
    /// A single shared TX register ("basic CAN"): a lower-priority
    /// message of the *same node* already loaded into the register
    /// cannot be revoked and must be transmitted first — one extra
    /// frame of local priority inversion.
    BasicCan,
    /// A software FIFO queue in front of the controller: a message can
    /// sit behind up to `depth − 1` earlier-queued messages of the same
    /// node regardless of priority.
    FifoQueue {
        /// Queue capacity in frames (≥ 1).
        depth: usize,
    },
}

impl ControllerType {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            ControllerType::FullCan => "fullCAN".into(),
            ControllerType::BasicCan => "basicCAN".into(),
            ControllerType::FifoQueue { depth } => format!("FIFO({depth})"),
        }
    }
}

impl fmt::Display for ControllerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(ControllerType::FullCan.to_string(), "fullCAN");
        assert_eq!(ControllerType::BasicCan.to_string(), "basicCAN");
        assert_eq!(
            ControllerType::FifoQueue { depth: 4 }.to_string(),
            "FIFO(4)"
        );
    }

    #[test]
    fn default_is_full_can() {
        assert_eq!(ControllerType::default(), ControllerType::FullCan);
    }
}
