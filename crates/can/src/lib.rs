//! # carta-can
//!
//! CAN bus modeling and worst-case response-time analysis — the local
//! analysis at the heart of the paper's case study (Sections 3–4).
//!
//! The crate covers everything Figure 3 of the paper lists as required
//! input for a reliable schedulability analysis:
//!
//! * the **K-Matrix facts**: identifiers (priorities), payload lengths
//!   and periods ([`message`], [`network`]),
//! * **dynamic patterns**: send jitters and bursts, expressed as
//!   standard event models from `carta-core`,
//! * the **controller type** of each node ([`controller`]),
//! * **bus error models** — sporadic and burst ([`error_model`]),
//! * worst-case **bit stuffing** ([`frame`]).
//!
//! On top sits [`rta::analyze_bus`], the Tindell/Burns-style busy-window
//! analysis, and [`resource::CanBusResource`], which plugs a bus into
//! the compositional engine of `carta-core`.
//!
//! ## Example
//!
//! ```
//! use carta_can::prelude::*;
//! use carta_core::time::Time;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut net = CanNetwork::new(500_000);
//! let ems = net.add_node(Node::new("EMS", ControllerType::FullCan));
//! let tcu = net.add_node(Node::new("TCU", ControllerType::BasicCan));
//! net.add_message(CanMessage::new(
//!     "engine_rpm", CanId::standard(0x100)?, Dlc::new(8),
//!     Time::from_ms(10), Time::ZERO, ems,
//! ));
//! net.add_message(CanMessage::new(
//!     "gear_state", CanId::standard(0x1A0)?, Dlc::new(4),
//!     Time::from_ms(20), Time::from_ms(2), tcu,
//! ));
//! let report = analyze_bus(&net, &SporadicErrors::new(Time::from_ms(50)), &AnalysisConfig::default())?;
//! assert!(report.schedulable());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod compiled;
pub mod controller;
pub mod encode;
pub mod error_model;
pub mod frame;
pub mod message;
pub mod network;
pub mod opa;
pub mod prob;
pub mod resource;
pub mod rta;

/// Convenient single import for the common types of this crate.
pub mod prelude {
    pub use crate::backend::{BackendConfig, CanFd, ClassicCan, NetworkBackend, WireBits};
    pub use crate::compiled::{CompiledBus, RtaWorkspace, SolvePoint, SolveStats};
    pub use crate::controller::ControllerType;
    pub use crate::error_model::{
        BurstErrors, CombinedErrors, ErrorModel, NoErrors, SporadicErrors,
    };
    pub use crate::frame::{Dlc, FrameKind, StuffingMode};
    pub use crate::message::{CanId, CanMessage, DeadlinePolicy};
    pub use crate::network::{CanNetwork, Node};
    pub use crate::opa::{audsley_assignment, PriorityOrder};
    pub use crate::prob::{
        prob_analyze, prob_from_reports, Pmf, ProbBusReport, ProbDist, ProbMessageReport,
        ProbOutcome,
    };
    pub use crate::resource::CanBusResource;
    pub use crate::rta::{analyze_bus, AnalysisConfig, BusReport, MessageReport, ResponseOutcome};
}
