//! Adapter exposing a CAN bus as a resource of the compositional
//! engine in `carta-core`.

use crate::error_model::{ErrorModel, NoErrors};
use crate::network::CanNetwork;
use crate::rta::{analyze_bus, AnalysisConfig, ResponseOutcome};
use carta_core::analysis::AnalysisError;
use carta_core::comp::{Resource, SlotResponse};
use carta_core::event_model::EventModel;
use std::sync::Arc;

/// A CAN bus participating in a system-level (multi-resource) analysis.
///
/// Slot `i` of this resource is message `i` of the wrapped network; the
/// compositional engine overrides each slot's activation event model
/// (e.g. with the output model of a gateway task) before running the
/// local analysis.
pub struct CanBusResource {
    name: String,
    network: CanNetwork,
    errors: Arc<dyn ErrorModel>,
    config: AnalysisConfig,
}

impl std::fmt::Debug for CanBusResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CanBusResource")
            .field("name", &self.name)
            .field("messages", &self.network.messages().len())
            .field("errors", &self.errors.describe())
            .finish()
    }
}

impl CanBusResource {
    /// Wraps a network with an error-free bus assumption.
    pub fn new(name: impl Into<String>, network: CanNetwork) -> Self {
        Self::with_errors(name, network, Arc::new(NoErrors))
    }

    /// Wraps a network with the given error model.
    pub fn with_errors(
        name: impl Into<String>,
        network: CanNetwork,
        errors: Arc<dyn ErrorModel>,
    ) -> Self {
        CanBusResource {
            name: name.into(),
            network,
            errors,
            config: AnalysisConfig::default(),
        }
    }

    /// Overrides the analysis configuration.
    pub fn with_config(mut self, config: AnalysisConfig) -> Self {
        self.config = config;
        self
    }

    /// The wrapped network.
    pub fn network(&self) -> &CanNetwork {
        &self.network
    }

    /// Default activation model of slot `i` (the network's own model),
    /// convenient when wiring sources into a compositional system.
    pub fn default_activation(&self, slot: usize) -> Option<EventModel> {
        self.network.messages().get(slot).map(|m| m.activation)
    }
}

impl Resource for CanBusResource {
    fn name(&self) -> &str {
        &self.name
    }

    fn slot_count(&self) -> usize {
        self.network.messages().len()
    }

    fn slot_name(&self, slot: usize) -> String {
        self.network
            .messages()
            .get(slot)
            .map(|m| format!("{}:{}", self.name, m.name))
            .unwrap_or_else(|| format!("{}[{slot}]", self.name))
    }

    fn analyze(&self, activations: &[EventModel]) -> Result<Vec<SlotResponse>, AnalysisError> {
        if activations.len() != self.slot_count() {
            return Err(AnalysisError::InvalidModel(format!(
                "bus `{}` expects {} activations, got {}",
                self.name,
                self.slot_count(),
                activations.len()
            )));
        }
        let mut net = self.network.clone();
        for (m, em) in net.messages_mut().iter_mut().zip(activations) {
            m.activation = *em;
        }
        let report = analyze_bus(&net, self.errors.as_ref(), &self.config)?;
        report
            .messages
            .iter()
            .map(|m| match &m.outcome {
                ResponseOutcome::Bounded(bounds) => Ok(SlotResponse {
                    bounds: *bounds,
                    min_output_spacing: m.c_min,
                }),
                // The diagnostic already interns the entity name; the
                // coarse error reuses that allocation.
                ResponseOutcome::Overload(diag) => Err(diag.to_error()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ControllerType;
    use crate::frame::Dlc;
    use crate::message::{CanId, CanMessage};
    use crate::network::Node;
    use carta_core::comp::{CompositionalSystem, NodeRef};
    use carta_core::time::Time;

    fn small_net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        net.add_message(CanMessage::new(
            "m0",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(8),
            Time::from_ms(10),
            Time::ZERO,
            a,
        ));
        net.add_message(CanMessage::new(
            "m1",
            CanId::standard(0x200).expect("valid"),
            Dlc::new(8),
            Time::from_ms(20),
            Time::ZERO,
            a,
        ));
        net
    }

    #[test]
    fn resource_reports_slots() {
        let res = CanBusResource::new("powertrain", small_net());
        assert_eq!(res.slot_count(), 2);
        assert_eq!(res.slot_name(0), "powertrain:m0");
        assert_eq!(res.slot_name(9), "powertrain[9]");
        assert!(res.default_activation(0).is_some());
        assert!(res.default_activation(9).is_none());
    }

    #[test]
    fn resource_analyze_matches_direct_rta() {
        let net = small_net();
        let direct = analyze_bus(&net, &NoErrors, &AnalysisConfig::default()).expect("valid");
        let res = CanBusResource::new("bus", net);
        let acts: Vec<EventModel> = (0..res.slot_count())
            .map(|i| res.default_activation(i).expect("slot"))
            .collect();
        let slots = res.analyze(&acts).expect("analyzable");
        for (s, m) in slots.iter().zip(&direct.messages) {
            assert_eq!(Some(s.bounds.worst()), m.outcome.wcrt());
        }
    }

    #[test]
    fn activation_count_mismatch_rejected() {
        let res = CanBusResource::new("bus", small_net());
        assert!(res.analyze(&[]).is_err());
    }

    #[test]
    fn works_inside_compositional_system() {
        let net = small_net();
        let em0 = net.messages()[0].activation;
        let em1 = net.messages()[1].activation;
        let res = CanBusResource::new("bus", net);
        let mut sys = CompositionalSystem::new();
        let b = sys.add_resource(Box::new(res));
        sys.set_source(NodeRef::new(b, 0), em0).expect("valid");
        sys.set_source(NodeRef::new(b, 1), em1).expect("valid");
        let result = sys.analyze().expect("converges");
        assert_eq!(
            result.response(NodeRef::new(b, 0)).worst(),
            Time::from_us(540) // blocked by one m1 frame + own
        );
    }
}
