//! Property suite for the probabilistic response-time distributions.
//!
//! [`Pmf`] is the algebraic core of the convolution-based RTA: every
//! guarantee the analysis states (CDFs never over-promise, mass is
//! conserved, quantiles invert the CDF) reduces to a small law on this
//! type. Each law is checked here over randomized distributions built
//! from the same constructors the analysis uses (`point`, `binomial`,
//! `convolve`, `clamp_to`).

use carta_can::prob::Pmf;
use carta_core::time::Time;
use proptest::prelude::*;

/// Tolerance for accumulated `f64` rounding across a convolution.
const EPS: f64 = 1e-9;

/// A randomized distribution from the analysis' own constructors: a
/// binomial error-mass convolved onto a point offset, exactly the shape
/// `prob_from_reports` builds per message.
fn pmf_strategy() -> impl Strategy<Value = Pmf> {
    (
        1u64..200,   // quantum in ns
        0u64..2_000, // point offset in ns
        0u64..30,    // binomial trials
        0.0f64..1.0, // per-trial probability
        1u64..2_000, // retransmission step in ns
    )
        .prop_map(|(q, off, trials, p, step)| {
            let quantum = Time::from_ns(q);
            Pmf::point(Time::from_ns(off), quantum).convolve(&Pmf::binomial(
                trials,
                p,
                Time::from_ns(step),
                quantum,
            ))
        })
}

/// Two distributions on a shared lattice (convolution requires it).
fn pmf_pair_strategy() -> impl Strategy<Value = (Pmf, Pmf)> {
    (
        1u64..200,
        (0u64..2_000, 0u64..30, 0.0f64..1.0, 1u64..2_000),
        (0u64..2_000, 0u64..30, 0.0f64..1.0, 1u64..2_000),
    )
        .prop_map(|(q, a, b)| {
            let quantum = Time::from_ns(q);
            let build = |(off, trials, p, step): (u64, u64, f64, u64)| {
                Pmf::point(Time::from_ns(off), quantum).convolve(&Pmf::binomial(
                    trials,
                    p,
                    Time::from_ns(step),
                    quantum,
                ))
            };
            (build(a), build(b))
        })
}

/// Bin-by-bin approximate equality: identical supports, masses within
/// `EPS`. Exact `==` is too strict — convolution sums floats in loop
/// order, so commuted operands can differ in the last ulp.
fn approx_eq(a: &Pmf, b: &Pmf) -> bool {
    a.quantum() == b.quantum()
        && a.len() == b.len()
        && a.bins()
            .zip(b.bins())
            .all(|((ta, ma), (tb, mb))| ta == tb && (ma - mb).abs() <= EPS)
}

proptest! {
    // The CDF is monotone non-decreasing in its argument.
    #[test]
    fn cdf_is_monotone(pmf in pmf_strategy(), a in 0u64..100_000, b in 0u64..100_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(pmf.cdf_at(Time::from_ns(lo)) <= pmf.cdf_at(Time::from_ns(hi)) + EPS);
    }

    // Every constructor yields unit mass, and the CDF saturates to it
    // at the support maximum.
    #[test]
    fn mass_is_unit_and_cdf_saturates(pmf in pmf_strategy()) {
        prop_assert!((pmf.total_mass() - 1.0).abs() <= EPS);
        prop_assert!((pmf.cdf_at(pmf.support_max()) - pmf.total_mass()).abs() <= EPS);
    }

    // Convolution conserves mass: the product of the operands' totals.
    #[test]
    fn convolution_conserves_mass((a, b) in pmf_pair_strategy()) {
        let c = a.convolve(&b);
        prop_assert!((c.total_mass() - a.total_mass() * b.total_mass()).abs() <= EPS);
    }

    // Convolution is commutative (up to `f64` accumulation order).
    #[test]
    fn convolution_commutes((a, b) in pmf_pair_strategy()) {
        prop_assert!(approx_eq(&a.convolve(&b), &b.convolve(&a)));
    }

    // Convolution is associative (up to `f64` accumulation order).
    #[test]
    fn convolution_is_associative(
        (a, b) in pmf_pair_strategy(),
        off in 0u64..2_000,
    ) {
        let c = Pmf::point(Time::from_ns(off), a.quantum());
        prop_assert!(approx_eq(&a.convolve(&b).convolve(&c), &a.convolve(&b.convolve(&c))));
    }

    // Convolving with a zero point mass is the identity.
    #[test]
    fn zero_point_is_identity(pmf in pmf_strategy()) {
        let zero = Pmf::point(Time::ZERO, pmf.quantum());
        prop_assert!(approx_eq(&pmf.convolve(&zero), &pmf));
    }

    // The support shifts additively under convolution.
    #[test]
    fn convolution_support_is_additive((a, b) in pmf_pair_strategy()) {
        let c = a.convolve(&b);
        prop_assert_eq!(c.support_min(), a.support_min() + b.support_min());
        prop_assert_eq!(c.support_max(), a.support_max() + b.support_max());
    }

    // `quantile` inverts the CDF: the returned bin value reaches the
    // requested probability, and it is the smallest such bin.
    #[test]
    fn quantile_inverts_cdf(pmf in pmf_strategy(), p in 0.001f64..1.0) {
        let q = pmf.quantile(p);
        prop_assert!(q >= pmf.support_min() && q <= pmf.support_max());
        prop_assert!(pmf.cdf_at(q) + EPS >= p.min(pmf.total_mass()));
        if q > pmf.support_min() {
            // One quantum earlier the CDF must still be short of `p`.
            prop_assert!(pmf.cdf_at(q - pmf.quantum()) < p);
        }
    }

    // Clamping preserves total mass and confines the support to the
    // (quantized) envelope.
    #[test]
    fn clamp_preserves_mass_and_confines_support(
        pmf in pmf_strategy(),
        lo in 0u64..50_000,
        span in 0u64..50_000,
    ) {
        let lo = Time::from_ns(lo);
        let hi = lo + Time::from_ns(span);
        let clamped = pmf.clamp_to(lo, hi);
        prop_assert!((clamped.total_mass() - pmf.total_mass()).abs() <= EPS);
        prop_assert!(clamped.support_min() + clamped.quantum() > lo);
        prop_assert!(clamped.support_max() <= hi + clamped.quantum());
    }
}
