//! Multi-round OEM↔supplier negotiation.
//!
//! The paper's Section 5.2 observes that "freezing certain design
//! parameters can result in new flexibility for other decisions and
//! allows trading the timing reserves and budgets for different
//! components against each other". This module turns that remark into
//! a deterministic protocol:
//!
//! 1. the OEM derives per-message send-jitter **budgets** from the
//!    current system state ([`oem_send_requirements`]),
//! 2. the supplier accepts every budget its (private) capability meets;
//!    those messages are **frozen** at their true capability values,
//! 3. freezing real (usually smaller) jitters releases bus slack, so
//!    the OEM re-derives budgets for the remaining messages — which may
//!    now fit — and the loop repeats,
//! 4. the negotiation ends when everything is agreed or a round makes
//!    no progress (the unresolved set escalates to redesign: different
//!    IDs, a faster bus, or relaxed requirements).
//!
//! [`oem_send_requirements`]: crate::duality::oem_send_requirements

use crate::compat::check_model;
use crate::duality::oem_send_requirements;
use crate::spec::Datasheet;
use carta_can::network::CanNetwork;
use carta_core::analysis::AnalysisError;
use carta_explore::scenario::Scenario;

/// One negotiation round's record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegotiationRound {
    /// Round number (1-based).
    pub round: usize,
    /// Messages agreed (frozen) in this round.
    pub agreed: Vec<String>,
    /// Messages still open after this round.
    pub open: Vec<String>,
}

/// The outcome of a negotiation.
#[derive(Debug, Clone)]
pub struct NegotiationOutcome {
    /// The agreed send models (a subset of the supplier capability).
    pub agreed: Datasheet,
    /// Messages no budget could be found for.
    pub unresolved: Vec<String>,
    /// Per-round record.
    pub rounds: Vec<NegotiationRound>,
}

impl NegotiationOutcome {
    /// `true` if every message of the supplier was agreed.
    pub fn converged(&self) -> bool {
        self.unresolved.is_empty()
    }
}

/// Runs the negotiation for the messages `node` sends on `net`, against
/// the supplier's true capability datasheet.
///
/// The network's modeled jitters for the node's messages act as the
/// OEM's initial (pessimistic) assumptions; agreed messages are frozen
/// at the supplier's capability values between rounds.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the underlying analyses, or
/// reports capability entries for unknown messages.
pub fn negotiate(
    net: &CanNetwork,
    scenario: &Scenario,
    node: usize,
    capability: &Datasheet,
    max_rounds: usize,
) -> Result<NegotiationOutcome, AnalysisError> {
    for (name, _) in capability.iter() {
        match net.message_by_name(name) {
            None => {
                return Err(AnalysisError::InvalidModel(format!(
                    "capability for unknown message `{name}`"
                )))
            }
            Some((_, m)) if m.sender != node => {
                return Err(AnalysisError::InvalidModel(format!(
                    "capability for `{name}`, which node {node} does not send"
                )))
            }
            Some(_) => {}
        }
    }

    let mut state = net.clone();
    let mut agreed = Datasheet::new(format!("{} (agreed)", capability.provider));
    let mut open: Vec<String> = capability.iter().map(|(n, _)| n.to_string()).collect();
    let mut rounds = Vec::new();

    for round in 1..=max_rounds {
        if open.is_empty() {
            break;
        }
        let budgets = oem_send_requirements(&state, scenario, node, 0.95, 0.95)?;
        let mut agreed_now = Vec::new();
        for name in open.clone() {
            let Some(offer) = capability.get(&name) else {
                continue;
            };
            let Some(budget) = budgets.get(&name) else {
                continue;
            };
            if check_model(budget, offer).is_ok() {
                // Freeze: the network now carries the supplier's true
                // model for this message.
                let Some((idx, _)) = state.message_by_name(&name) else {
                    continue;
                };
                state.messages_mut()[idx].activation = *offer;
                agreed.guarantee(name.clone(), *offer);
                agreed_now.push(name.clone());
            }
        }
        open.retain(|n| !agreed_now.contains(n));
        let progressed = !agreed_now.is_empty();
        rounds.push(NegotiationRound {
            round,
            agreed: agreed_now,
            open: open.clone(),
        });
        if !progressed {
            break;
        }
    }

    Ok(NegotiationOutcome {
        agreed,
        unresolved: open,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;
    use carta_core::event_model::EventModel;
    use carta_core::time::Time;

    /// A tight bus where the OEM's initial assumptions (big jitters)
    /// leave room for only part of the supplier's messages at once —
    /// freezing the first batch must unlock the rest.
    fn tight_net() -> CanNetwork {
        let mut net = CanNetwork::new(125_000);
        let sup = net.add_node(Node::new("SUP", ControllerType::FullCan));
        let oem = net.add_node(Node::new("OEM", ControllerType::FullCan));
        // Supplier messages, initially assumed at 30 % jitter.
        for (k, period) in [10u64, 10, 20].into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("sup{k}"),
                CanId::standard(0x180 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::from_ms(period * 3 / 10),
                sup,
            ));
        }
        // OEM background traffic.
        for (k, period) in [10u64, 20, 50].into_iter().enumerate() {
            net.add_message(CanMessage::new(
                format!("oem{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(period),
                Time::from_ms(1),
                oem,
            ));
        }
        net
    }

    /// The supplier can actually do much better than assumed.
    fn capability() -> Datasheet {
        let mut ds = Datasheet::new("SUP");
        ds.guarantee(
            "sup0",
            EventModel::periodic_with_jitter(Time::from_ms(10), Time::from_us(500)),
        )
        .guarantee(
            "sup1",
            EventModel::periodic_with_jitter(Time::from_ms(10), Time::from_us(800)),
        )
        .guarantee(
            "sup2",
            EventModel::periodic_with_jitter(Time::from_ms(20), Time::from_ms(2)),
        );
        ds
    }

    #[test]
    fn converges_and_freezing_is_monotone() {
        let outcome = negotiate(
            &tight_net(),
            &Scenario::sporadic_errors(Time::from_ms(20)),
            0,
            &capability(),
            8,
        )
        .expect("valid");
        assert!(outcome.converged(), "unresolved: {:?}", outcome.unresolved);
        assert_eq!(outcome.agreed.len(), 3);
        // The paper's mechanism is genuinely exercised: not everything
        // fits the first round; the slack freed by the first agreement
        // unlocks the rest.
        assert!(
            outcome.rounds.len() >= 2,
            "expected multi-round convergence"
        );
        assert!(outcome.rounds[0].agreed.len() < 3);
        // Each round's open set shrinks monotonically.
        for w in outcome.rounds.windows(2) {
            assert!(w[1].open.len() <= w[0].open.len());
        }
        // Agreed values are exactly the capability values.
        for (name, model) in outcome.agreed.iter() {
            assert_eq!(capability().get(name), Some(model));
        }
    }

    #[test]
    fn impossible_capability_stays_unresolved() {
        let mut greedy = Datasheet::new("SUP");
        // A demand that can never fit: jitter way beyond any budget.
        greedy.guarantee(
            "sup0",
            EventModel::periodic_with_jitter(Time::from_ms(10), Time::from_ms(40)),
        );
        let outcome =
            negotiate(&tight_net(), &Scenario::worst_case(), 0, &greedy, 4).expect("valid");
        assert!(!outcome.converged());
        assert_eq!(outcome.unresolved, vec!["sup0".to_string()]);
        // It gave up after a no-progress round, not after max_rounds.
        assert!(outcome.rounds.len() <= 2);
    }

    #[test]
    fn validation_errors() {
        let mut ghost = Datasheet::new("SUP");
        ghost.guarantee("phantom", EventModel::periodic(Time::from_ms(10)));
        assert!(matches!(
            negotiate(&tight_net(), &Scenario::best_case(), 0, &ghost, 4),
            Err(AnalysisError::InvalidModel(_))
        ));
        let mut wrong_node = Datasheet::new("SUP");
        wrong_node.guarantee("oem0", EventModel::periodic(Time::from_ms(10)));
        assert!(matches!(
            negotiate(&tight_net(), &Scenario::best_case(), 0, &wrong_node, 4),
            Err(AnalysisError::InvalidModel(_))
        ));
    }
}
