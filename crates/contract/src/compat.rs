//! Compatibility checking between guarantees and requirements.
//!
//! "What is initially assumed and required, must later be guaranteed,
//! and vice versa" (paper, Sec. 5.1). A guarantee satisfies a
//! requirement if the guaranteed stream is a refinement of the required
//! bound: same period, no more jitter, no denser bursts — checked both
//! in closed form and via the exact `δ⁻` containment test.

use crate::spec::{Datasheet, RequirementSpec};
use carta_core::event_model::EventModel;
use carta_core::time::Time;
use std::fmt;

/// Verdict for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The guarantee satisfies the requirement.
    Satisfied,
    /// The guarantee violates the requirement.
    Violated {
        /// Human-readable reason.
        reason: String,
    },
    /// The requirement has no matching guarantee.
    Missing,
}

impl Verdict {
    /// `true` for [`Verdict::Satisfied`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Satisfied)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Satisfied => write!(f, "satisfied"),
            Verdict::Violated { reason } => write!(f, "VIOLATED: {reason}"),
            Verdict::Missing => write!(f, "MISSING guarantee"),
        }
    }
}

/// Result of checking a datasheet against a requirement spec.
#[derive(Debug, Clone)]
pub struct CompatReport {
    /// Provider of the checked datasheet.
    pub provider: String,
    /// Consumer of the checked requirements.
    pub consumer: String,
    /// Per-message verdicts, in requirement order.
    pub verdicts: Vec<(String, Verdict)>,
}

impl CompatReport {
    /// `true` if every requirement is satisfied.
    pub fn all_satisfied(&self) -> bool {
        self.verdicts.iter().all(|(_, v)| v.is_ok())
    }

    /// Names of requirements that failed or are missing.
    pub fn failures(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|(_, v)| !v.is_ok())
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

impl fmt::Display for CompatReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compatibility: `{}` guarantees vs `{}` requirements",
            self.provider, self.consumer
        )?;
        for (name, v) in &self.verdicts {
            writeln!(f, "  {name}: {v}")?;
        }
        Ok(())
    }
}

/// Checks one guarantee against one required bound, with reasons.
pub fn check_model(required: &EventModel, guaranteed: &EventModel) -> Verdict {
    if guaranteed.period() < required.period() {
        return Verdict::Violated {
            reason: format!(
                "period {} shorter than required {}",
                guaranteed.period(),
                required.period()
            ),
        };
    }
    if guaranteed.jitter() > required.jitter() {
        return Verdict::Violated {
            reason: format!(
                "jitter {} exceeds required bound {}",
                guaranteed.jitter(),
                required.jitter()
            ),
        };
    }
    if guaranteed.dmin() < required.dmin() {
        return Verdict::Violated {
            reason: format!(
                "minimum distance {} below required {}",
                guaranteed.dmin(),
                required.dmin()
            ),
        };
    }
    // Cross-check with the exact containment test over a generous
    // horizon; the closed form above is sufficient, this guards the
    // implementation itself.
    let horizon = required.period().saturating_mul(64).max(Time::from_s(1));
    debug_assert!(required.is_satisfied_by_pointwise(guaranteed, horizon));
    Verdict::Satisfied
}

/// Checks a **freshness** requirement: consecutive arrivals of the
/// guaranteed stream must never be more than `max_gap` apart. This is
/// the receiving-side requirement of the paper's Sec. 5.1 ("control
/// algorithms rely on new CAN message data arriving in a dedicated
/// timely manner").
pub fn check_freshness(max_gap: Time, guaranteed: &EventModel) -> Verdict {
    match guaranteed.delta_max(2) {
        Some(gap) if gap <= max_gap => Verdict::Satisfied,
        Some(gap) => Verdict::Violated {
            reason: format!("arrival gap up to {gap} exceeds freshness bound {max_gap}"),
        },
        None => Verdict::Violated {
            reason: format!("sporadic stream cannot guarantee freshness within {max_gap}"),
        },
    }
}

/// Checks a datasheet against a requirement specification.
pub fn check(datasheet: &Datasheet, requirements: &RequirementSpec) -> CompatReport {
    let verdicts = requirements
        .iter()
        .map(|(name, required)| {
            let verdict = match datasheet.get(name) {
                Some(guaranteed) => check_model(required, guaranteed),
                None => Verdict::Missing,
            };
            (name.to_string(), verdict)
        })
        .collect();
    CompatReport {
        provider: datasheet.provider.clone(),
        consumer: requirements.consumer.clone(),
        verdicts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_core::time::Time;

    fn em(period_ms: u64, jitter_ms: u64) -> EventModel {
        EventModel::periodic_with_jitter(Time::from_ms(period_ms), Time::from_ms(jitter_ms))
    }

    #[test]
    fn model_check_reasons() {
        assert!(check_model(&em(10, 3), &em(10, 2)).is_ok());
        assert!(check_model(&em(10, 3), &em(10, 3)).is_ok());
        match check_model(&em(10, 3), &em(10, 4)) {
            Verdict::Violated { reason } => assert!(reason.contains("jitter")),
            other => panic!("expected violation, got {other:?}"),
        }
        match check_model(&em(10, 3), &em(5, 0)) {
            Verdict::Violated { reason } => assert!(reason.contains("period")),
            other => panic!("expected violation, got {other:?}"),
        }
        let req = em(10, 3).with_dmin(Time::from_ms(1));
        match check_model(&req, &em(10, 2)) {
            Verdict::Violated { reason } => assert!(reason.contains("distance")),
            other => panic!("expected violation, got {other:?}"),
        }
        // A slower stream with less jitter satisfies an arrival bound.
        assert!(check_model(&em(10, 3), &em(20, 1)).is_ok());
    }

    #[test]
    fn report_aggregates() {
        let mut ds = Datasheet::new("supplier");
        ds.guarantee("a", em(10, 1)).guarantee("b", em(10, 9));
        let mut rs = RequirementSpec::new("OEM");
        rs.require("a", em(10, 2))
            .require("b", em(10, 2))
            .require("c", em(5, 0));
        let report = check(&ds, &rs);
        assert!(!report.all_satisfied());
        assert_eq!(report.failures(), vec!["b", "c"]);
        let text = report.to_string();
        assert!(text.contains("a: satisfied"));
        assert!(text.contains("b: VIOLATED"));
        assert!(text.contains("c: MISSING"));
    }

    #[test]
    fn freshness_uses_delta_max() {
        // Gap can reach P + J = 12 ms.
        let g = em(10, 2);
        assert!(check_freshness(Time::from_ms(12), &g).is_ok());
        assert!(!check_freshness(Time::from_ms(11), &g).is_ok());
        let sporadic = EventModel::sporadic(Time::from_ms(10));
        match check_freshness(Time::from_ms(100), &sporadic) {
            Verdict::Violated { reason } => assert!(reason.contains("sporadic")),
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn empty_requirements_trivially_satisfied() {
        let ds = Datasheet::new("s");
        let rs = RequirementSpec::new("c");
        assert!(check(&ds, &rs).all_satisfied());
    }
}
