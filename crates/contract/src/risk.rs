//! Multi-supplier risk management — the paper's closing forecast
//! (Sec. 6, ref. \[14\]): "the ability to perform what-if analysis in
//! rapid cycles even enables a multi-supplier risk-management, possibly
//! in combination with a penalty-reward model, that allows reacting to
//! bottlenecks earlier than ever".
//!
//! The model here is deliberately simple and fully analytical: each
//! supplier commitment carries a confidence status; a *slip scenario*
//! inflates the jitters of everything a given supplier has not yet
//! hard-guaranteed, re-runs the bus analysis, and charges the supplier
//! a penalty per newly lost message. The ranking tells the OEM whose
//! late delivery threatens the integration most — before any prototype
//! exists.

use carta_can::network::CanNetwork;
use carta_core::analysis::AnalysisError;
use carta_core::event_model::EventModel;
use carta_explore::scenario::Scenario;
use std::collections::BTreeMap;

/// How firm a supplier's timing commitment is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CommitmentStatus {
    /// Backed by a signed datasheet from a finished implementation —
    /// does not slip.
    Guaranteed,
    /// Contractually promised but the ECU is still in development —
    /// may slip.
    Committed,
    /// An OEM assumption with no supplier backing — may slip.
    Assumed,
}

/// One supplier's commitment for one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Commitment {
    /// Supplier name.
    pub supplier: String,
    /// Message name.
    pub message: String,
    /// Confidence status.
    pub status: CommitmentStatus,
}

/// Parameters of the penalty-reward assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskConfig {
    /// Factor applied to non-guaranteed jitters in a slip scenario
    /// (e.g. `1.5` = "this supplier delivers 50 % more jitter than
    /// promised").
    pub slip_factor: f64,
    /// Penalty units charged per message newly missing its deadline
    /// when the supplier slips.
    pub penalty_per_loss: f64,
    /// Reward units granted if the supplier can slip without breaking
    /// anything (headroom the OEM can trade elsewhere).
    pub reward_for_headroom: f64,
}

impl Default for RiskConfig {
    fn default() -> Self {
        RiskConfig {
            slip_factor: 1.5,
            penalty_per_loss: 10.0,
            reward_for_headroom: 1.0,
        }
    }
}

/// Assessment of one supplier.
#[derive(Debug, Clone, PartialEq)]
pub struct SupplierRisk {
    /// Supplier name.
    pub supplier: String,
    /// Messages attributed to the supplier.
    pub messages: usize,
    /// Of those, how many are still slippable (not guaranteed).
    pub slippable: usize,
    /// Deadline misses added when only this supplier slips.
    pub added_losses: usize,
    /// Penalty-reward score: positive = risk, negative = headroom.
    pub score: f64,
}

/// The ranked risk report.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskReport {
    /// Deadline misses with every commitment at its nominal value.
    pub baseline_missed: usize,
    /// Per-supplier assessment, most critical first.
    pub suppliers: Vec<SupplierRisk>,
}

impl RiskReport {
    /// The supplier whose slip hurts most, if any slip hurts at all.
    pub fn most_critical(&self) -> Option<&SupplierRisk> {
        self.suppliers.iter().find(|s| s.added_losses > 0)
    }
}

/// Runs the slip-scenario assessment.
///
/// Messages without a commitment entry are treated as OEM-owned and
/// never slip.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the bus analyses, or reports
/// commitments referencing unknown messages as
/// [`AnalysisError::InvalidModel`].
///
/// # Panics
///
/// Panics if `config.slip_factor < 1.0` (a slip cannot improve timing).
pub fn assess_suppliers(
    net: &CanNetwork,
    scenario: &Scenario,
    commitments: &[Commitment],
    config: &RiskConfig,
) -> Result<RiskReport, AnalysisError> {
    assert!(config.slip_factor >= 1.0, "slip factor must be at least 1");
    // Group commitments by supplier; validate message names.
    let mut by_supplier: BTreeMap<&str, Vec<&Commitment>> = BTreeMap::new();
    for c in commitments {
        if net.message_by_name(&c.message).is_none() {
            return Err(AnalysisError::InvalidModel(format!(
                "commitment for unknown message `{}`",
                c.message
            )));
        }
        by_supplier.entry(c.supplier.as_str()).or_default().push(c);
    }

    let baseline_missed = scenario.analyze(net)?.missed_count();

    let mut suppliers = Vec::new();
    for (supplier, cs) in &by_supplier {
        let slippable: Vec<&&Commitment> = cs
            .iter()
            .filter(|c| c.status != CommitmentStatus::Guaranteed)
            .collect();
        let mut slipped = net.clone();
        for c in &slippable {
            let Some((idx, _)) = slipped.message_by_name(&c.message) else {
                continue;
            };
            let m = &mut slipped.messages_mut()[idx];
            m.activation = EventModel::new(
                m.activation.kind(),
                m.activation.period(),
                m.activation.jitter().scale(config.slip_factor),
                m.activation.dmin(),
            );
        }
        let slipped_missed = scenario.analyze(&slipped)?.missed_count();
        let added = slipped_missed.saturating_sub(baseline_missed);
        let score = if added > 0 {
            added as f64 * config.penalty_per_loss
        } else {
            -config.reward_for_headroom * slippable.len() as f64
        };
        suppliers.push(SupplierRisk {
            supplier: (*supplier).to_string(),
            messages: cs.len(),
            slippable: slippable.len(),
            added_losses: added,
            score,
        });
    }
    suppliers.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.supplier.cmp(&b.supplier))
    });
    Ok(RiskReport {
        baseline_missed,
        suppliers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;
    use carta_core::time::Time;

    /// A tight 250 kbit/s bus where deadlines depend on the senders
    /// keeping their jitter word.
    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(250_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        for (k, (period, jitter)) in [
            (5u64, 1u64), // m0: supplier X, jittery and fast
            (10, 2),      // m1: supplier X
            (10, 1),      // m2: supplier Y, firm datasheet
            (20, 2),      // m3: supplier Y
            (50, 0),      // m4: OEM-owned
        ]
        .iter()
        .enumerate()
        {
            net.add_message(CanMessage::new(
                format!("m{k}"),
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(*period),
                Time::from_ms(*jitter),
                a,
            ));
        }
        net
    }

    fn commitments() -> Vec<Commitment> {
        vec![
            Commitment {
                supplier: "X".into(),
                message: "m0".into(),
                status: CommitmentStatus::Committed,
            },
            Commitment {
                supplier: "X".into(),
                message: "m1".into(),
                status: CommitmentStatus::Assumed,
            },
            Commitment {
                supplier: "Y".into(),
                message: "m2".into(),
                status: CommitmentStatus::Guaranteed,
            },
            Commitment {
                supplier: "Y".into(),
                message: "m3".into(),
                status: CommitmentStatus::Guaranteed,
            },
        ]
    }

    #[test]
    fn ranks_the_slipping_supplier_first() {
        let report = assess_suppliers(
            &net(),
            &Scenario::worst_case(),
            &commitments(),
            &RiskConfig {
                slip_factor: 3.0,
                ..RiskConfig::default()
            },
        )
        .expect("valid");
        assert_eq!(report.suppliers.len(), 2);
        // Y is fully guaranteed: zero slippable, negative (reward) or
        // zero-risk score, never "most critical".
        let y = report
            .suppliers
            .iter()
            .find(|s| s.supplier == "Y")
            .expect("present");
        assert_eq!(y.slippable, 0);
        assert_eq!(y.added_losses, 0);
        let x = report
            .suppliers
            .iter()
            .find(|s| s.supplier == "X")
            .expect("present");
        assert_eq!(x.slippable, 2);
        assert_eq!(x.messages, 2);
        // X slipping 3x on a tight bus must hurt someone.
        assert!(x.added_losses > 0, "X's slip should cause losses");
        assert_eq!(report.most_critical().expect("X is critical").supplier, "X");
        assert!(x.score > y.score);
    }

    #[test]
    fn guaranteed_commitments_never_slip() {
        // Even an absurd slip factor cannot move supplier Y.
        let report = assess_suppliers(
            &net(),
            &Scenario::worst_case(),
            &commitments(),
            &RiskConfig {
                slip_factor: 10.0,
                ..RiskConfig::default()
            },
        )
        .expect("valid");
        let y = report
            .suppliers
            .iter()
            .find(|s| s.supplier == "Y")
            .expect("present");
        assert_eq!(y.added_losses, 0);
        assert!(y.score <= 0.0, "fully guaranteed suppliers earn reward");
    }

    #[test]
    fn harmless_slips_earn_reward() {
        // On a fast bus the same slip hurts nobody.
        let mut fast = net();
        let rebuilt = {
            let mut n = CanNetwork::new(500_000);
            n.add_node(Node::new("A", ControllerType::FullCan));
            for m in fast.messages() {
                n.add_message(m.clone());
            }
            n
        };
        fast = rebuilt;
        let report = assess_suppliers(
            &fast,
            &Scenario::worst_case(),
            &commitments(),
            &RiskConfig::default(),
        )
        .expect("valid");
        let x = report
            .suppliers
            .iter()
            .find(|s| s.supplier == "X")
            .expect("present");
        assert_eq!(x.added_losses, 0);
        assert!(x.score < 0.0, "headroom is rewarded");
        assert!(report.most_critical().is_none());
    }

    #[test]
    fn unknown_message_rejected() {
        let bad = vec![Commitment {
            supplier: "X".into(),
            message: "ghost".into(),
            status: CommitmentStatus::Assumed,
        }];
        assert!(matches!(
            assess_suppliers(
                &net(),
                &Scenario::worst_case(),
                &bad,
                &RiskConfig::default()
            ),
            Err(AnalysisError::InvalidModel(_))
        ));
    }

    #[test]
    #[should_panic(expected = "slip factor must be at least 1")]
    fn slip_below_one_rejected() {
        let _ = assess_suppliers(
            &net(),
            &Scenario::worst_case(),
            &[],
            &RiskConfig {
                slip_factor: 0.5,
                ..RiskConfig::default()
            },
        );
    }
}
