//! # carta-contract
//!
//! The supply-chain layer of the `carta` workspace — the paper's
//! Section 5 turned into an API:
//!
//! * [`spec`] — datasheets (guarantees) and requirement specifications,
//!   the event-model interface of ref. \[11\] that protects both parties'
//!   IP,
//! * [`compat`] — "what is assumed and required must later be
//!   guaranteed": arrival-bound and freshness compatibility checks,
//! * [`duality`] — Figure 6 end to end: OEM receive guarantees, OEM
//!   send requirements (per-message jitter slack), supplier datasheets
//!   from ECU analysis,
//! * [`scope`] — Figure 3's information partition and the assumptions
//!   an analysis needs,
//! * [`refinement`] — Section 5.2's iterative refinement as
//!   assumptions are replaced by real data,
//! * [`risk`] — the multi-supplier penalty-reward risk management the
//!   paper forecasts in its conclusion (ref. \[14\]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod compat;
pub mod duality;
pub mod exchange;
pub mod negotiation;
pub mod refinement;
pub mod risk;
pub mod scope;
pub mod spec;

/// Convenient single import for the common types of this crate.
pub mod prelude {
    pub use crate::compat::{check, check_freshness, check_model, CompatReport, Verdict};
    pub use crate::duality::{
        max_message_jitter, oem_receive_guarantees, oem_send_requirements, supplier_send_datasheet,
    };
    pub use crate::exchange::{
        datasheet_to_text, from_text, requirements_to_text, ExchangeDocument, ParseExchangeError,
    };
    pub use crate::negotiation::{negotiate, NegotiationOutcome, NegotiationRound};
    pub use crate::refinement::{RefinementSession, RefinementStep};
    pub use crate::risk::{
        assess_suppliers, Commitment, CommitmentStatus, RiskConfig, RiskReport, SupplierRisk,
    };
    pub use crate::scope::{analysis_readiness, InformationScope, ReadinessReport};
    pub use crate::spec::{Datasheet, RequirementSpec};
}
