//! Datasheets and requirement specifications.
//!
//! The paper's Section 5 proposes that OEMs and suppliers exchange
//! timing information through a common event-model interface
//! (ref. \[11\]): a **datasheet** states what a party *guarantees* about
//! the streams it produces, a **requirement specification** states what
//! it *requires* of the streams it consumes. Both are maps from message
//! names to standard event models — deliberately free of internal
//! implementation detail, so "the intellectual property of either party
//! \[is\] protected".

use carta_core::event_model::EventModel;
use std::collections::BTreeMap;

/// What a party guarantees about the streams it emits.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Datasheet {
    /// Issuing party (e.g. `"TCU supplier"`).
    pub provider: String,
    entries: BTreeMap<String, EventModel>,
}

impl Datasheet {
    /// Creates an empty datasheet for a provider.
    pub fn new(provider: impl Into<String>) -> Self {
        Datasheet {
            provider: provider.into(),
            entries: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a guarantee for a message.
    pub fn guarantee(&mut self, message: impl Into<String>, model: EventModel) -> &mut Self {
        self.entries.insert(message.into(), model);
        self
    }

    /// The guaranteed model for a message, if stated.
    pub fn get(&self, message: &str) -> Option<&EventModel> {
        self.entries.get(message)
    }

    /// Iterates over `(message, model)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &EventModel)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of guaranteed messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no guarantees are stated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// What a party requires of the streams it consumes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RequirementSpec {
    /// Issuing party (e.g. `"OEM"`).
    pub consumer: String,
    entries: BTreeMap<String, EventModel>,
}

impl RequirementSpec {
    /// Creates an empty specification for a consumer.
    pub fn new(consumer: impl Into<String>) -> Self {
        RequirementSpec {
            consumer: consumer.into(),
            entries: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a requirement: the stream must stay within
    /// the given bound (same period, at most its jitter, at least its
    /// minimum distance).
    pub fn require(&mut self, message: impl Into<String>, bound: EventModel) -> &mut Self {
        self.entries.insert(message.into(), bound);
        self
    }

    /// The required bound for a message, if stated.
    pub fn get(&self, message: &str) -> Option<&EventModel> {
        self.entries.get(message)
    }

    /// Iterates over `(message, bound)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &EventModel)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of required messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no requirements are stated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_core::time::Time;

    #[test]
    fn datasheet_roundtrip() {
        let mut ds = Datasheet::new("TCU supplier");
        assert!(ds.is_empty());
        ds.guarantee(
            "gear_state",
            EventModel::periodic_with_jitter(Time::from_ms(20), Time::from_ms(2)),
        )
        .guarantee("clutch_torque", EventModel::periodic(Time::from_ms(10)));
        assert_eq!(ds.len(), 2);
        assert!(ds.get("gear_state").is_some());
        assert!(ds.get("nope").is_none());
        let names: Vec<&str> = ds.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["clutch_torque", "gear_state"]); // sorted
    }

    #[test]
    fn requirement_roundtrip() {
        let mut rs = RequirementSpec::new("OEM");
        rs.require(
            "gear_state",
            EventModel::periodic_with_jitter(Time::from_ms(20), Time::from_ms(4)),
        );
        assert_eq!(rs.len(), 1);
        assert!(!rs.is_empty());
        assert_eq!(rs.consumer, "OEM");
        assert_eq!(
            rs.get("gear_state").expect("present").jitter(),
            Time::from_ms(4)
        );
    }
}
