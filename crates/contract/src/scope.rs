//! Information scopes — Figure 3 of the paper.
//!
//! Figure 3 structures the inputs a reliable schedulability analysis
//! needs (K-Matrix statics, send jitters, controller types, error and
//! flashing models) and shades the subset the OEM actually possesses.
//! An [`InformationScope`] makes that partition explicit, and
//! [`analysis_readiness`] reports exactly which facts must be covered
//! by *assumptions* — the paper's answer to the "data (un)availability
//! problem" (Sec. 3.3).

use carta_can::network::CanNetwork;
use std::collections::BTreeSet;
use std::fmt;

/// The facts a party has first-hand knowledge of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InformationScope {
    /// Scope owner (e.g. `"OEM"`).
    pub owner: String,
    /// The static K-Matrix: identifiers, lengths, periods.
    pub kmatrix_statics: bool,
    /// Messages whose send jitter is known first-hand.
    pub known_jitters: BTreeSet<String>,
    /// CAN controller types of the nodes.
    pub controller_types: bool,
    /// A validated bus error model.
    pub error_model: bool,
    /// Flashing/diagnosis traffic profile.
    pub flashing_profile: bool,
}

impl InformationScope {
    /// The typical OEM scope of Figure 3: the K-Matrix and the
    /// controller types are known, everything dynamic is not — except
    /// the jitters the suppliers already published.
    pub fn oem<I, S>(known_jitters: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        InformationScope {
            owner: "OEM".into(),
            kmatrix_statics: true,
            known_jitters: known_jitters.into_iter().map(Into::into).collect(),
            controller_types: true,
            error_model: false,
            flashing_profile: false,
        }
    }

    /// Marks a message's jitter as known (e.g. after a datasheet
    /// arrived).
    pub fn learn_jitter(&mut self, message: impl Into<String>) {
        self.known_jitters.insert(message.into());
    }
}

/// What must be assumed before the analysis can run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadinessReport {
    /// Facts that block the analysis entirely.
    pub blocking: Vec<String>,
    /// Facts that must be covered by explicit assumptions (the
    /// what-if axis).
    pub assumptions_needed: Vec<String>,
}

impl ReadinessReport {
    /// `true` if the analysis can run (possibly on assumptions).
    pub fn can_run(&self) -> bool {
        self.blocking.is_empty()
    }

    /// `true` if it can run without any assumption.
    pub fn is_complete(&self) -> bool {
        self.blocking.is_empty() && self.assumptions_needed.is_empty()
    }
}

impl fmt::Display for ReadinessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complete() {
            return writeln!(f, "analysis ready: all inputs known first-hand");
        }
        if !self.blocking.is_empty() {
            writeln!(f, "analysis BLOCKED, missing:")?;
            for b in &self.blocking {
                writeln!(f, "  - {b}")?;
            }
        }
        if !self.assumptions_needed.is_empty() {
            writeln!(f, "analysis possible under assumptions for:")?;
            for a in &self.assumptions_needed {
                writeln!(f, "  - {a}")?;
            }
        }
        Ok(())
    }
}

/// Evaluates whether `scope` suffices to analyze `net`, and which
/// assumptions are required.
pub fn analysis_readiness(scope: &InformationScope, net: &CanNetwork) -> ReadinessReport {
    let mut blocking = Vec::new();
    let mut assumptions = Vec::new();
    if !scope.kmatrix_statics {
        blocking.push("K-Matrix (identifiers, lengths, periods)".to_string());
    }
    if !scope.controller_types {
        assumptions.push("controller types of all nodes".to_string());
    }
    for m in net.messages() {
        if !scope.known_jitters.contains(&m.name) {
            assumptions.push(format!("send jitter of `{}`", m.name));
        }
    }
    if !scope.error_model {
        assumptions.push("bus error model (sporadic/burst parameters)".to_string());
    }
    if !scope.flashing_profile {
        assumptions.push("flashing & diagnosis traffic profile".to_string());
    }
    ReadinessReport {
        blocking,
        assumptions_needed: assumptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;
    use carta_core::time::Time;

    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        for (k, name) in ["rpm", "gear"].iter().enumerate() {
            net.add_message(CanMessage::new(
                *name,
                CanId::standard(0x100 + k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(10),
                Time::ZERO,
                a,
            ));
        }
        net
    }

    #[test]
    fn oem_scope_needs_assumptions_not_blocked() {
        let scope = InformationScope::oem(["rpm"]);
        let report = analysis_readiness(&scope, &net());
        assert!(report.can_run());
        assert!(!report.is_complete());
        let text = report.to_string();
        assert!(text.contains("gear"));
        assert!(!text.contains("`rpm`"));
        assert!(text.contains("error model"));
        assert!(text.contains("flashing"));
    }

    #[test]
    fn missing_statics_blocks() {
        let mut scope = InformationScope::oem(Vec::<String>::new());
        scope.kmatrix_statics = false;
        let report = analysis_readiness(&scope, &net());
        assert!(!report.can_run());
        assert!(report.to_string().contains("BLOCKED"));
    }

    #[test]
    fn learning_facts_completes_the_scope() {
        let mut scope = InformationScope::oem(["rpm"]);
        scope.learn_jitter("gear");
        scope.error_model = true;
        scope.flashing_profile = true;
        let report = analysis_readiness(&scope, &net());
        assert!(report.is_complete());
        assert!(report.to_string().contains("ready"));
    }
}
