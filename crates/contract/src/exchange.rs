//! A plain-text exchange format for datasheets and requirement
//! specifications.
//!
//! The paper's Section 5.1 proposes that OEMs and suppliers "use a
//! common interface for exchanging important design information in
//! terms of data sheets and requirement specifications". This module
//! defines that interface concretely: a line-oriented text format that
//! round-trips through [`datasheet_to_text`]/[`requirements_to_text`]
//! and [`from_text`], carries nothing but
//! event-model parameters (no IP), and is stable enough to diff in a
//! change-control system:
//!
//! ```text
//! #datasheet,TCU supplier
//! gear_state,periodic,20000,1400,80
//! clutch_torque,sporadic,10000,0,0
//! ```
//!
//! Columns: message, kind (`periodic`/`sporadic`), period µs, jitter
//! µs, dmin µs. Values are quantized to whole microseconds (industry
//! datasheets state nothing finer); serializing truncates sub-µs parts,
//! which is the safe direction for jitter guarantees.

use crate::spec::{Datasheet, RequirementSpec};
use carta_core::event_model::{ActivationKind, EventModel};
use carta_core::time::Time;
use std::error::Error;
use std::fmt;

/// Parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExchangeError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseExchangeError {}

/// Either kind of exchanged document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExchangeDocument {
    /// A supplier/OEM datasheet (guarantees).
    Datasheet(Datasheet),
    /// A requirement specification.
    Requirements(RequirementSpec),
}

fn model_line(name: &str, model: &EventModel) -> String {
    let kind = match model.kind() {
        ActivationKind::Periodic => "periodic",
        ActivationKind::Sporadic => "sporadic",
    };
    format!(
        "{name},{kind},{},{},{}\n",
        model.period().as_ns() / 1_000,
        model.jitter().as_ns() / 1_000,
        model.dmin().as_ns() / 1_000,
    )
}

/// Serializes a datasheet.
pub fn datasheet_to_text(ds: &Datasheet) -> String {
    let mut out = format!("#datasheet,{}\n", ds.provider);
    for (name, model) in ds.iter() {
        out.push_str(&model_line(name, model));
    }
    out
}

/// Serializes a requirement specification.
pub fn requirements_to_text(rs: &RequirementSpec) -> String {
    let mut out = format!("#requirements,{}\n", rs.consumer);
    for (name, model) in rs.iter() {
        out.push_str(&model_line(name, model));
    }
    out
}

/// Parses either document kind.
///
/// # Errors
///
/// Returns [`ParseExchangeError`] pointing at the first malformed line.
pub fn from_text(text: &str) -> Result<ExchangeDocument, ParseExchangeError> {
    let mut doc: Option<ExchangeDocument> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ParseExchangeError {
            line: line_no,
            message,
        };
        if let Some(rest) = line.strip_prefix("#datasheet,") {
            doc = Some(ExchangeDocument::Datasheet(Datasheet::new(rest.trim())));
        } else if let Some(rest) = line.strip_prefix("#requirements,") {
            doc = Some(ExchangeDocument::Requirements(RequirementSpec::new(
                rest.trim(),
            )));
        } else if line.starts_with('#') {
            continue;
        } else {
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 5 {
                return Err(err(format!("expected 5 fields, found {}", fields.len())));
            }
            let kind = match fields[1].trim() {
                "periodic" => ActivationKind::Periodic,
                "sporadic" => ActivationKind::Sporadic,
                other => return Err(err(format!("unknown kind `{other}`"))),
            };
            let parse = |s: &str, what: &str| -> Result<u64, ParseExchangeError> {
                s.trim()
                    .parse()
                    .map_err(|_| err(format!("invalid {what} `{s}`")))
            };
            let period = parse(fields[2], "period")?;
            if period == 0 {
                return Err(err("zero period".into()));
            }
            let model = EventModel::new(
                kind,
                Time::from_us(period),
                Time::from_us(parse(fields[3], "jitter")?),
                Time::from_us(parse(fields[4], "dmin")?),
            );
            let name = fields[0].trim();
            match doc.as_mut() {
                Some(ExchangeDocument::Datasheet(ds)) => {
                    ds.guarantee(name, model);
                }
                Some(ExchangeDocument::Requirements(rs)) => {
                    rs.require(name, model);
                }
                None => return Err(err("entry before document header".into())),
            }
        }
    }
    doc.ok_or(ParseExchangeError {
        line: 1,
        message: "missing #datasheet or #requirements header".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_datasheet() -> Datasheet {
        let mut ds = Datasheet::new("TCU supplier");
        ds.guarantee(
            "gear_state",
            EventModel::periodic_with_jitter(Time::from_ms(20), Time::from_us(1400))
                .with_dmin(Time::from_us(80)),
        )
        .guarantee("heartbeat", EventModel::sporadic(Time::from_ms(100)));
        ds
    }

    #[test]
    fn datasheet_roundtrip() {
        let ds = sample_datasheet();
        let text = datasheet_to_text(&ds);
        assert!(text.starts_with("#datasheet,TCU supplier\n"));
        match from_text(&text).expect("parses") {
            ExchangeDocument::Datasheet(back) => assert_eq!(back, ds),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn requirements_roundtrip() {
        let mut rs = RequirementSpec::new("OEM");
        rs.require(
            "gear_state",
            EventModel::periodic_with_jitter(Time::from_ms(20), Time::from_ms(3)),
        );
        let text = requirements_to_text(&rs);
        match from_text(&text).expect("parses") {
            ExchangeDocument::Requirements(back) => assert_eq!(back, rs),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(from_text("").is_err());
        let err = from_text("gear,periodic,100,0,0\n").expect_err("no header");
        assert!(err.message.contains("before document header"));
        let err = from_text("#datasheet,x\ngear,weird,100,0,0\n").expect_err("bad kind");
        assert_eq!(err.line, 2);
        let err = from_text("#datasheet,x\ngear,periodic,0,0,0\n").expect_err("zero period");
        assert!(err.message.contains("zero period"));
        let err = from_text("#datasheet,x\ngear,periodic,1,z,0\n").expect_err("bad jitter");
        assert!(err.message.contains("jitter"));
        let err = from_text("#datasheet,x\ngear,periodic,1\n").expect_err("short");
        assert!(err.message.contains("5 fields"));
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let text = "#datasheet,x\n\n# free comment\ngear,periodic,100,5,1\n";
        match from_text(text).expect("parses") {
            ExchangeDocument::Datasheet(ds) => {
                assert_eq!(ds.len(), 1);
                let m = ds.get("gear").expect("present");
                assert_eq!(m.period(), Time::from_us(100));
                assert_eq!(m.jitter(), Time::from_us(5));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }
}
