//! Iterative refinement — the paper's Section 5.2.
//!
//! "With such a clear interface, the analysis can be repeated as new
//! design details become available." A [`RefinementSession`] starts
//! from an assumption (uniform jitter ratio for every message without
//! first-hand data), then **commits** supplier datasheets as they
//! arrive, replacing assumptions by guarantees and re-analyzing after
//! each step. The step history shows how the design solidifies —
//! "newly appearing bottlenecks can be discovered quickly".

use crate::spec::Datasheet;
use carta_can::network::CanNetwork;
use carta_core::analysis::AnalysisError;
use carta_core::event_model::EventModel;
use carta_explore::scenario::Scenario;
use std::collections::BTreeSet;

/// One analysis step in the refinement history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinementStep {
    /// What triggered the step.
    pub label: String,
    /// Messages missing their deadline after the step.
    pub missed: usize,
    /// Messages still running on assumed jitters.
    pub assumed_remaining: usize,
}

/// An evolving OEM analysis: assumptions replaced by guarantees.
#[derive(Debug, Clone)]
pub struct RefinementSession {
    net: CanNetwork,
    scenario: Scenario,
    assumed: BTreeSet<String>,
    history: Vec<RefinementStep>,
}

impl RefinementSession {
    /// Starts a session: every message whose modeled jitter is zero
    /// (unknown) is replaced by the assumption `jitter = ratio ×
    /// period` and marked as *assumed*. The initial analysis is step 0.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the initial analysis.
    pub fn start(
        net: &CanNetwork,
        scenario: Scenario,
        assumed_ratio: f64,
    ) -> Result<Self, AnalysisError> {
        let mut net = net.clone();
        let mut assumed = BTreeSet::new();
        for m in net.messages_mut() {
            if m.activation.jitter().is_zero() {
                let period = m.activation.period();
                m.activation = EventModel::new(
                    m.activation.kind(),
                    period,
                    period.scale(assumed_ratio),
                    m.activation.dmin(),
                );
                assumed.insert(m.name.clone());
            }
        }
        let mut session = RefinementSession {
            net,
            scenario,
            assumed,
            history: Vec::new(),
        };
        session.record(format!(
            "initial assumptions ({assumed_ratio:.0$} ratio)",
            2
        ))?;
        Ok(session)
    }

    fn record(&mut self, label: String) -> Result<(), AnalysisError> {
        let report = self.scenario.analyze(&self.net)?;
        self.history.push(RefinementStep {
            label,
            missed: report.missed_count(),
            assumed_remaining: self.assumed.len(),
        });
        Ok(())
    }

    /// Commits a supplier datasheet: matching messages adopt the
    /// guaranteed event models and stop being assumptions. Returns the
    /// number of messages updated.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] from the re-analysis.
    pub fn commit_datasheet(&mut self, datasheet: &Datasheet) -> Result<usize, AnalysisError> {
        let mut updated = 0;
        for (name, model) in datasheet.iter() {
            if let Some((idx, _)) = self.net.message_by_name(name) {
                self.net.messages_mut()[idx].activation = *model;
                self.assumed.remove(name);
                updated += 1;
            }
        }
        self.record(format!(
            "committed datasheet `{}` ({updated} messages)",
            datasheet.provider
        ))?;
        Ok(updated)
    }

    /// The current network state (assumptions + committed guarantees).
    pub fn network(&self) -> &CanNetwork {
        &self.net
    }

    /// Messages still running on assumptions.
    pub fn assumed_remaining(&self) -> usize {
        self.assumed.len()
    }

    /// Deadline misses in the latest analysis.
    pub fn current_missed(&self) -> usize {
        self.history.last().map_or(0, |s| s.missed)
    }

    /// The full step history.
    pub fn history(&self) -> &[RefinementStep] {
        &self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;
    use carta_core::time::Time;

    fn net() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let a = net.add_node(Node::new("A", ControllerType::FullCan));
        for (k, (name, period, jitter)) in [
            ("rpm", 10u64, 1u64), // known jitter
            ("gear", 20, 0),      // unknown
            ("brake", 10, 0),     // unknown
        ]
        .iter()
        .enumerate()
        {
            net.add_message(CanMessage::new(
                *name,
                CanId::standard(0x100 + 16 * k as u32).expect("valid"),
                Dlc::new(8),
                Time::from_ms(*period),
                Time::from_ms(*jitter),
                a,
            ));
        }
        net
    }

    #[test]
    fn session_tracks_assumptions_and_commits() {
        let mut session =
            RefinementSession::start(&net(), Scenario::worst_case(), 0.25).expect("valid");
        assert_eq!(session.assumed_remaining(), 2);
        assert_eq!(session.history().len(), 1);
        // Assumed jitter was applied.
        let (_, gear) = session.network().message_by_name("gear").expect("present");
        assert_eq!(gear.activation.jitter(), Time::from_ms(5));
        // The known message kept its first-hand value.
        let (_, rpm) = session.network().message_by_name("rpm").expect("present");
        assert_eq!(rpm.activation.jitter(), Time::from_ms(1));

        // A datasheet arrives: gear's real jitter is only 1 ms.
        let mut ds = Datasheet::new("TCU supplier");
        ds.guarantee(
            "gear",
            EventModel::periodic_with_jitter(Time::from_ms(20), Time::from_ms(1)),
        );
        let updated = session.commit_datasheet(&ds).expect("valid");
        assert_eq!(updated, 1);
        assert_eq!(session.assumed_remaining(), 1);
        assert_eq!(session.history().len(), 2);
        let (_, gear) = session.network().message_by_name("gear").expect("present");
        assert_eq!(gear.activation.jitter(), Time::from_ms(1));
        assert!(session.history()[1].label.contains("TCU supplier"));
    }

    #[test]
    fn committing_better_data_never_hurts_this_light_bus() {
        let mut session =
            RefinementSession::start(&net(), Scenario::worst_case(), 0.30).expect("valid");
        let before = session.current_missed();
        let mut ds = Datasheet::new("all suppliers");
        ds.guarantee("gear", EventModel::periodic(Time::from_ms(20)))
            .guarantee("brake", EventModel::periodic(Time::from_ms(10)));
        session.commit_datasheet(&ds).expect("valid");
        assert!(session.current_missed() <= before);
        assert_eq!(session.assumed_remaining(), 0);
    }

    #[test]
    fn unknown_datasheet_entries_are_ignored() {
        let mut session =
            RefinementSession::start(&net(), Scenario::worst_case(), 0.25).expect("valid");
        let mut ds = Datasheet::new("stranger");
        ds.guarantee("ghost", EventModel::periodic(Time::from_ms(5)));
        assert_eq!(session.commit_datasheet(&ds).expect("valid"), 0);
        assert_eq!(session.assumed_remaining(), 2);
    }
}
