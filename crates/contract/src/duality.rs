//! The OEM ↔ supplier duality of Figure 6.
//!
//! *"For the bus dimensioning the OEM requires data about ECU2 sending
//! behavior. Likewise, the ECU3 supplier requires data from the OEM.
//! What is initially assumed and required, must later be guaranteed,
//! and vice versa."*
//!
//! This module derives all four artifacts:
//!
//! * [`oem_receive_guarantees`] — what the OEM can guarantee receivers
//!   about message arrival timing (from the bus analysis),
//! * [`oem_send_requirements`] — the send-jitter bounds the OEM can
//!   demand from one supplier so the bus stays schedulable (from
//!   per-message slack search, Sec. 5: "jitter constraints for the most
//!   critical messages can be formulated as requirements"),
//! * [`supplier_send_datasheet`] — the send models a supplier can
//!   guarantee (from its ECU analysis),
//! * supplier *receive* requirements are freshness bounds, checked with
//!   [`check_freshness`](crate::compat::check_freshness).

use crate::spec::{Datasheet, RequirementSpec};
use carta_can::network::CanNetwork;
use carta_can::rta::ResponseOutcome;
use carta_core::analysis::AnalysisError;
use carta_core::event_model::EventModel;
use carta_core::time::Time;
use carta_ecu::rta::{analyze_ecu, EcuAnalysisConfig};
use carta_ecu::send_jitter::message_model_from_task;
use carta_ecu::task::Task;
use carta_explore::scenario::Scenario;

/// What the OEM can guarantee receivers: the arrival event model of
/// every message (output model of the bus analysis). Messages without
/// a bounded response are returned separately — the OEM cannot
/// guarantee them at all.
///
/// # Errors
///
/// Propagates [`AnalysisError`] for malformed networks.
pub fn oem_receive_guarantees(
    net: &CanNetwork,
    scenario: &Scenario,
) -> Result<(Datasheet, Vec<String>), AnalysisError> {
    let report = scenario.analyze(net)?;
    let mut ds = Datasheet::new("OEM (bus arrival timing)");
    let mut unguaranteed = Vec::new();
    for m in &report.messages {
        match &m.outcome {
            ResponseOutcome::Bounded(bounds) => {
                let activation = net.messages()[m.index].activation;
                ds.guarantee(
                    m.name.to_string(),
                    activation.propagate(bounds.best(), bounds.worst(), m.c_min),
                );
            }
            ResponseOutcome::Overload(_) => unguaranteed.push(m.name.to_string()),
        }
    }
    Ok((ds, unguaranteed))
}

/// The largest send jitter of `message` (all other assumptions fixed)
/// at which the whole bus is still schedulable under `scenario`,
/// searched up to `cap`. Returns `None` if the bus fails even at zero
/// jitter for this message.
///
/// # Errors
///
/// Propagates [`AnalysisError`] for malformed networks.
pub fn max_message_jitter(
    net: &CanNetwork,
    scenario: &Scenario,
    message: &str,
    cap: Time,
) -> Result<Option<Time>, AnalysisError> {
    let idx = net
        .message_by_name(message)
        .map(|(i, _)| i)
        .ok_or_else(|| AnalysisError::InvalidModel(format!("unknown message `{message}`")))?;
    let with_jitter = |jitter: Time| -> CanNetwork {
        let mut v = net.clone();
        let m = &mut v.messages_mut()[idx];
        m.activation = EventModel::new(
            m.activation.kind(),
            m.activation.period(),
            jitter,
            m.activation.dmin(),
        );
        v
    };
    let ok = |jitter: Time| -> Result<bool, AnalysisError> {
        Ok(scenario.analyze(&with_jitter(jitter))?.schedulable())
    };
    if !ok(Time::ZERO)? {
        return Ok(None);
    }
    if ok(cap)? {
        return Ok(Some(cap));
    }
    let (mut lo, mut hi) = (Time::ZERO, cap);
    // Bisect to 10 µs precision — far finer than any datasheet states.
    while hi.saturating_sub(lo) > Time::from_us(10) {
        let mid = Time::from_ns((lo.as_ns() + hi.as_ns()) / 2);
        if ok(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

/// The requirement specification the OEM hands to the supplier owning
/// `node`: for each of the node's messages, the maximum send jitter
/// that keeps the bus schedulable (with a safety `margin` subtracted,
/// e.g. `0.8` keeps 20 % reserve), capped at `cap_ratio` of the period.
///
/// # Errors
///
/// Propagates [`AnalysisError`] for malformed networks.
///
/// # Panics
///
/// Panics if `margin` or `cap_ratio` is not in `(0, 1]`.
pub fn oem_send_requirements(
    net: &CanNetwork,
    scenario: &Scenario,
    node: usize,
    cap_ratio: f64,
    margin: f64,
) -> Result<RequirementSpec, AnalysisError> {
    assert!(margin > 0.0 && margin <= 1.0, "margin must be in (0, 1]");
    assert!(
        cap_ratio > 0.0 && cap_ratio <= 1.0,
        "cap ratio must be in (0, 1]"
    );
    let node_name = net
        .nodes()
        .get(node)
        .map(|n| n.name.clone())
        .unwrap_or_else(|| format!("node {node}"));
    let mut spec = RequirementSpec::new(format!("OEM requirements for {node_name}"));
    let names: Vec<(String, EventModel)> = net
        .messages()
        .iter()
        .filter(|m| m.sender == node)
        .map(|m| (m.name.clone(), m.activation))
        .collect();
    for (name, activation) in names {
        let cap = activation.period().scale(cap_ratio);
        let allowed = max_message_jitter(net, scenario, &name, cap)?
            .map(|j| j.scale(margin))
            .unwrap_or(Time::ZERO);
        spec.require(
            name,
            EventModel::new(
                activation.kind(),
                activation.period(),
                allowed,
                activation.dmin(),
            ),
        );
    }
    Ok(spec)
}

/// The datasheet a supplier derives from its ECU analysis: each
/// `(task index, message name)` pair maps a task completion to a
/// queued message whose send model follows the SymTA/S propagation
/// rule (Sec. 5.1: "ECU suppliers can perform analysis and provide all
/// the necessary info, at the same time protecting their essential
/// IP" — only the resulting event models are published).
///
/// # Errors
///
/// Returns [`AnalysisError::Unbounded`] if a mapped task has no
/// response bound, or propagates ECU analysis errors.
pub fn supplier_send_datasheet(
    provider: impl Into<String>,
    tasks: &[Task],
    config: &EcuAnalysisConfig,
    mapping: &[(usize, &str)],
) -> Result<Datasheet, AnalysisError> {
    let report = analyze_ecu(tasks, config)?;
    let mut ds = Datasheet::new(provider);
    for &(task_idx, message) in mapping {
        let task = tasks.get(task_idx).ok_or_else(|| {
            AnalysisError::InvalidModel(format!("task index {task_idx} out of range"))
        })?;
        let t = &report.tasks[task_idx];
        let bounds = t.bounds.ok_or_else(|| AnalysisError::Unbounded {
            entity: t.name.as_str().into(),
        })?;
        ds.guarantee(message, message_model_from_task(&task.activation, &bounds));
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat::{check, check_freshness};
    use carta_can::controller::ControllerType;
    use carta_can::frame::Dlc;
    use carta_can::message::{CanId, CanMessage};
    use carta_can::network::Node;
    use carta_ecu::task::Priority;

    fn bus() -> CanNetwork {
        let mut net = CanNetwork::new(500_000);
        let ems = net.add_node(Node::new("EMS", ControllerType::FullCan));
        let tcu = net.add_node(Node::new("TCU", ControllerType::FullCan));
        net.add_message(CanMessage::new(
            "engine_rpm",
            CanId::standard(0x100).expect("valid"),
            Dlc::new(8),
            Time::from_ms(10),
            Time::ZERO,
            ems,
        ));
        net.add_message(CanMessage::new(
            "gear_state",
            CanId::standard(0x200).expect("valid"),
            Dlc::new(4),
            Time::from_ms(20),
            Time::from_ms(2),
            tcu,
        ));
        net
    }

    fn tcu_tasks() -> Vec<Task> {
        vec![
            Task::periodic(
                "shift_ctrl",
                Priority(2),
                Time::from_ms(5),
                Time::from_us(300),
                Time::from_ms(1),
            ),
            Task::periodic(
                "comm_tx",
                Priority(1),
                Time::from_ms(20),
                Time::from_us(100),
                Time::from_us(500),
            ),
        ]
    }

    #[test]
    fn receive_guarantees_have_propagated_jitter() {
        let (ds, bad) = oem_receive_guarantees(&bus(), &Scenario::best_case()).expect("valid");
        assert!(bad.is_empty());
        let rpm = ds.get("engine_rpm").expect("guaranteed");
        assert_eq!(rpm.period(), Time::from_ms(10));
        // Arrival jitter = response span > 0 (blocking varies).
        assert!(rpm.jitter() > Time::ZERO);
        // gear_state keeps its own send jitter plus the response span.
        let gear = ds.get("gear_state").expect("guaranteed");
        assert!(gear.jitter() >= Time::from_ms(2));
    }

    #[test]
    fn overloaded_messages_cannot_be_guaranteed() {
        let mut net = bus();
        net.messages_mut()[1].activation = EventModel::periodic(Time::from_us(150));
        let (ds, bad) = oem_receive_guarantees(&net, &Scenario::best_case()).expect("valid");
        assert_eq!(bad, vec!["gear_state".to_string()]);
        assert!(ds.get("gear_state").is_none());
        assert!(ds.get("engine_rpm").is_some());
    }

    #[test]
    fn per_message_slack_is_found() {
        let net = bus();
        let j = max_message_jitter(
            &net,
            &Scenario::worst_case(),
            "gear_state",
            Time::from_ms(15),
        )
        .expect("valid");
        let j = j.expect("schedulable at zero");
        assert!(j > Time::ZERO);
        // Unknown message name is an error.
        assert!(
            max_message_jitter(&net, &Scenario::worst_case(), "ghost", Time::from_ms(1)).is_err()
        );
    }

    #[test]
    fn requirement_and_datasheet_close_the_loop() {
        let net = bus();
        // OEM formulates requirements for the TCU's messages.
        let req = oem_send_requirements(&net, &Scenario::worst_case(), 1, 0.9, 0.8).expect("valid");
        assert_eq!(req.len(), 1);
        let bound = req.get("gear_state").expect("required");
        assert!(bound.jitter() > Time::ZERO);

        // The TCU supplier derives its datasheet from its ECU analysis.
        let ds = supplier_send_datasheet(
            "TCU supplier",
            &tcu_tasks(),
            &EcuAnalysisConfig::default(),
            &[(1, "gear_state")],
        )
        .expect("bounded");
        let g = ds.get("gear_state").expect("guaranteed");
        // comm_tx: wcrt = 0.5 + 1 = 1.5 ms, bcrt = 0.1 ms -> J = 1.4 ms.
        assert_eq!(g.jitter(), Time::from_us(1400));

        // Figure 6 closes: guarantee vs requirement.
        let report = check(&ds, &req);
        assert!(report.all_satisfied(), "{report}");
    }

    #[test]
    fn supplier_receive_freshness_against_oem_guarantee() {
        let (ds, _) = oem_receive_guarantees(&bus(), &Scenario::best_case()).expect("valid");
        let rpm = ds.get("engine_rpm").expect("guaranteed");
        // The TCU control loop needs fresh rpm data within 15 ms.
        assert!(check_freshness(Time::from_ms(15), rpm).is_ok());
        // A 10.1 ms bound is too tight once arrival jitter is counted.
        assert!(!check_freshness(Time::from_ms(10) + Time::from_us(100), rpm).is_ok());
    }

    #[test]
    fn datasheet_errors() {
        let tasks = tcu_tasks();
        assert!(matches!(
            supplier_send_datasheet("x", &tasks, &EcuAnalysisConfig::default(), &[(9, "m")]),
            Err(AnalysisError::InvalidModel(_))
        ));
        // An overloaded ECU cannot issue guarantees.
        let hog = vec![Task::periodic(
            "hog",
            Priority(1),
            Time::from_ms(1),
            Time::ZERO,
            Time::from_ms(2),
        )];
        assert!(matches!(
            supplier_send_datasheet("x", &hog, &EcuAnalysisConfig::default(), &[(0, "m")]),
            Err(AnalysisError::Unbounded { .. })
        ));
    }
}
