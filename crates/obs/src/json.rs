//! Minimal JSON support: escaping, number formatting, an object
//! builder for emitters, and a small recursive-descent parser so tests
//! and tooling can validate emitted documents without external crates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (`null` for NaN/infinite values,
/// which JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// An incremental `{...}` builder preserving insertion order.
#[derive(Debug, Default)]
pub struct ObjectBuilder {
    parts: Vec<String>,
}

impl ObjectBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string member.
    pub fn string(mut self, key: &str, value: &str) -> Self {
        self.parts
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds a numeric member.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.parts
            .push(format!("\"{}\":{}", escape(key), number(value)));
        self
    }

    /// Adds an unsigned-integer member.
    pub fn uint(mut self, key: &str, value: u64) -> Self {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a pre-rendered JSON value verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a boolean member.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (keys sorted, duplicates keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` for other kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object map, if an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a boolean, if one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a non-negative whole
    /// number small enough (< 2⁵³) to be exact in a JSON double.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// JSON parse failure: a message and the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing
/// else).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.num(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for carta's
                            // own output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 —
                    // it came in as &str).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("invalid UTF-8"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn num(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn builder_and_parser_roundtrip() {
        let doc = ObjectBuilder::new()
            .string("name", "rta.bus")
            .uint("count", 42)
            .num("rate", 0.75)
            .raw("nested", "{\"a\":[1,2]}")
            .build();
        let parsed = parse(&doc).expect("valid");
        assert_eq!(parsed.get("name").and_then(Value::as_str), Some("rta.bus"));
        assert_eq!(parsed.get("count").and_then(Value::as_f64), Some(42.0));
        assert_eq!(parsed.get("rate").and_then(Value::as_f64), Some(0.75));
        let nested = parsed.get("nested").expect("present");
        assert_eq!(
            nested.get("a"),
            Some(&Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)]))
        );
    }

    #[test]
    fn parser_accepts_standard_documents() {
        let v =
            parse(" {\"a\": [true, false, null, -1.5e2], \"b\": \"x\\u0041y\"} ").expect("valid");
        assert_eq!(
            v.get("a"),
            Some(&Value::Arr(vec![
                Value::Bool(true),
                Value::Bool(false),
                Value::Null,
                Value::Num(-150.0)
            ]))
        );
        assert_eq!(v.get("b").and_then(Value::as_str), Some("xAy"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
