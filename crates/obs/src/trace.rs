//! Scoped-span tracing facade with pluggable sinks.
//!
//! Instrumented code opens spans with [`span!`] and emits point events
//! with [`event!`]. Both are no-ops — a single relaxed atomic load,
//! with field formatting never evaluated — until a sink is
//! [`install`]ed. Sinks receive [`SpanEvent`] records; the crate ships
//! a [`NullSink`], a [`StderrSink`], an in-memory [`RingBufferSink`]
//! (backing `carta trace`) and a [`JsonlSink`] file writer.

use crate::json::ObjectBuilder;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// What a [`SpanEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A span was opened.
    Enter,
    /// A span closed; `dur_ns` is set.
    Exit,
    /// A point-in-time event inside the current span.
    Instant,
}

impl SpanKind {
    /// Stable lowercase name used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Enter => "enter",
            SpanKind::Exit => "exit",
            SpanKind::Instant => "instant",
        }
    }
}

/// One tracing record delivered to a [`SpanSink`].
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Enter, exit or instant.
    pub kind: SpanKind,
    /// Static span/event name, e.g. `"rta.bus"`.
    pub name: &'static str,
    /// Formatted key/value fields attached at the call site.
    pub fields: Vec<(&'static str, String)>,
    /// Nesting depth on the emitting thread (0 = top level).
    pub depth: usize,
    /// Emitting thread, e.g. `"ThreadId(3)"`.
    pub thread: String,
    /// Nanoseconds since the process tracing epoch.
    pub t_ns: u64,
    /// Span duration; set on `Exit` events only.
    pub dur_ns: Option<u64>,
}

impl SpanEvent {
    /// Renders the event as one JSON object (one JSONL line, sans
    /// newline).
    pub fn to_json(&self) -> String {
        let mut obj = ObjectBuilder::new()
            .string("kind", self.kind.as_str())
            .string("name", self.name)
            .uint("depth", self.depth as u64)
            .string("thread", &self.thread)
            .uint("t_ns", self.t_ns);
        if let Some(d) = self.dur_ns {
            obj = obj.uint("dur_ns", d);
        }
        if !self.fields.is_empty() {
            let mut fields = ObjectBuilder::new();
            for (k, v) in &self.fields {
                fields = fields.string(k, v);
            }
            obj = obj.raw("fields", &fields.build());
        }
        obj.build()
    }
}

/// Receives tracing records. Implementations must be cheap and
/// thread-safe; `record` is called from analysis worker threads.
pub trait SpanSink: Send + Sync {
    /// Delivers one event.
    fn record(&self, event: &SpanEvent);

    /// Flushes any buffered output (default: nothing to do).
    fn flush(&self) {}
}

impl std::fmt::Debug for dyn SpanSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn SpanSink")
    }
}

/// Discards every event. Useful for measuring facade overhead.
#[derive(Debug, Default)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn record(&self, _event: &SpanEvent) {}
}

/// Prints each event to stderr, indented by depth.
#[derive(Debug, Default)]
pub struct StderrSink;

impl SpanSink for StderrSink {
    fn record(&self, event: &SpanEvent) {
        let indent = "  ".repeat(event.depth);
        let fields: Vec<String> = event
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let dur = event
            .dur_ns
            .map(|d| format!(" ({:.1} us)", d as f64 / 1_000.0))
            .unwrap_or_default();
        eprintln!(
            "[trace] {indent}{} {}{}{}",
            event.kind.as_str(),
            event.name,
            if fields.is_empty() {
                String::new()
            } else {
                format!(" {}", fields.join(" "))
            },
            dur
        );
    }
}

/// Keeps the most recent events in memory; old events are dropped once
/// `capacity` is reached. Backs the `carta trace` replay.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    events: Mutex<VecDeque<SpanEvent>>,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Removes and returns the buffered events, oldest first.
    pub fn drain(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SpanSink for RingBufferSink {
    fn record(&self, event: &SpanEvent) {
        let mut events = self
            .events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// Appends one JSON object per event to a file (JSON Lines).
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) `path` for writing.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl SpanSink for JsonlSink {
    fn record(&self, event: &SpanEvent) {
        let mut w = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self
            .writer
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush();
    }
}

static SINK: RwLock<Option<Arc<dyn SpanSink>>> = RwLock::new(None);
static TRACING: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Installs `sink` as the process-wide tracing sink and turns tracing
/// on. Replaces any previous sink (after flushing it).
pub fn install(sink: Arc<dyn SpanSink>) {
    epoch(); // pin t=0 no later than the first event
    let previous = SINK
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .replace(sink);
    if let Some(previous) = previous {
        previous.flush();
    }
    TRACING.store(true, Ordering::Release);
}

/// Turns tracing off, flushes and removes the current sink (returned
/// so callers can e.g. drain a ring buffer).
pub fn uninstall() -> Option<Arc<dyn SpanSink>> {
    TRACING.store(false, Ordering::Release);
    let sink = SINK
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    if let Some(sink) = &sink {
        sink.flush();
    }
    sink
}

/// `true` while a sink is installed. One relaxed load — this is the
/// fast path instrumented code checks before formatting anything.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

fn dispatch(event: SpanEvent) {
    if let Some(sink) = SINK
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .as_ref()
    {
        sink.record(&event);
    }
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// RAII guard for one span: emits `Enter` on creation and `Exit` (with
/// duration) on drop. Created via the [`span!`] macro; inert when
/// tracing is off at creation time.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// `Some` only when the guard actually opened a span.
    start: Option<Instant>,
    depth: usize,
}

impl SpanGuard {
    /// Opens a span named `name`; `fields` is only invoked when tracing
    /// is enabled. Prefer the [`span!`] macro.
    #[must_use = "the span closes when the guard drops"]
    pub fn new(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, String)>) -> Self {
        if !tracing_enabled() {
            return SpanGuard {
                name,
                start: None,
                depth: 0,
            };
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        dispatch(SpanEvent {
            kind: SpanKind::Enter,
            name,
            fields: fields(),
            depth,
            thread: format!("{:?}", std::thread::current().id()),
            t_ns: now_ns(),
            dur_ns: None,
        });
        SpanGuard {
            name,
            start: Some(Instant::now()),
            depth,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        dispatch(SpanEvent {
            kind: SpanKind::Exit,
            name: self.name,
            fields: Vec::new(),
            depth: self.depth,
            thread: format!("{:?}", std::thread::current().id()),
            t_ns: now_ns(),
            dur_ns: Some(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)),
        });
    }
}

/// Emits a point-in-time event; `fields` is only invoked when tracing
/// is enabled. Prefer the [`event!`] macro.
pub fn instant(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, String)>) {
    if !tracing_enabled() {
        return;
    }
    dispatch(SpanEvent {
        kind: SpanKind::Instant,
        name,
        fields: fields(),
        depth: DEPTH.with(Cell::get),
        thread: format!("{:?}", std::thread::current().id()),
        t_ns: now_ns(),
        dur_ns: None,
    });
}

/// Opens a scoped span: `let _s = span!("rta.bus", msg = id);`
///
/// The guard closes the span when dropped. Field values are formatted
/// with `Display` and only when a sink is installed.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::trace::SpanGuard::new($name, || {
            vec![$((stringify!($key), format!("{}", $value))),*]
        })
    };
}

/// Emits a point event: `event!("rta.verdict", ok = schedulable);`
///
/// Field values are formatted with `Display` and only when a sink is
/// installed.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::trace::instant($name, || {
            vec![$((stringify!($key), format!("{}", $value))),*]
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    // The sink slot is process-global, so every test that installs one
    // runs under this lock to avoid cross-talk (Rust runs tests in
    // threads of one process).
    static TEST_SINK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_balance() {
        let _guard = TEST_SINK_LOCK.lock().unwrap();
        let ring = Arc::new(RingBufferSink::new(64));
        install(ring.clone());
        {
            let _outer = span!("outer", a = 1);
            {
                let _inner = span!("inner");
                event!("tick", n = 2);
            }
        }
        uninstall();
        let events = ring.drain();
        let kinds: Vec<(SpanKind, &str, usize)> =
            events.iter().map(|e| (e.kind, e.name, e.depth)).collect();
        assert_eq!(
            kinds,
            vec![
                (SpanKind::Enter, "outer", 0),
                (SpanKind::Enter, "inner", 1),
                (SpanKind::Instant, "tick", 2),
                (SpanKind::Exit, "inner", 1),
                (SpanKind::Exit, "outer", 0),
            ]
        );
        assert_eq!(events[0].fields, vec![("a", "1".to_string())]);
        assert!(events[4].dur_ns.is_some());
    }

    #[test]
    fn disabled_tracing_skips_field_formatting() {
        let _guard = TEST_SINK_LOCK.lock().unwrap();
        uninstall();
        let mut formatted = false;
        {
            let _s = SpanGuard::new("quiet", || {
                formatted = true;
                Vec::new()
            });
        }
        assert!(!formatted, "field closure must not run when disabled");
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let ring = RingBufferSink::new(2);
        for i in 0..4 {
            ring.record(&SpanEvent {
                kind: SpanKind::Instant,
                name: "e",
                fields: vec![("i", i.to_string())],
                depth: 0,
                thread: "t".to_string(),
                t_ns: i,
                dur_ns: None,
            });
        }
        let events = ring.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_ns, 2);
        assert_eq!(events[1].t_ns, 3);
        assert!(ring.is_empty());
    }

    #[test]
    fn events_serialize_to_parseable_json() {
        let event = SpanEvent {
            kind: SpanKind::Exit,
            name: "rta.bus",
            fields: vec![("msgs", "64".to_string())],
            depth: 1,
            thread: "ThreadId(1)".to_string(),
            t_ns: 123,
            dur_ns: Some(456),
        };
        let v = parse(&event.to_json()).expect("valid json");
        assert_eq!(v.get("kind").and_then(|x| x.as_str()), Some("exit"));
        assert_eq!(v.get("name").and_then(|x| x.as_str()), Some("rta.bus"));
        assert_eq!(v.get("dur_ns").and_then(|x| x.as_f64()), Some(456.0));
        assert_eq!(
            v.get("fields")
                .and_then(|f| f.get("msgs"))
                .and_then(|x| x.as_str()),
            Some("64")
        );
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let _guard = TEST_SINK_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join("carta-obs-jsonl-test.jsonl");
        let sink = Arc::new(JsonlSink::create(&path).expect("create"));
        install(sink);
        {
            let _s = span!("file.span");
        }
        uninstall();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "enter + exit");
        for line in lines {
            parse(line).expect("each line is valid json");
        }
        let _ = std::fs::remove_file(&path);
    }
}
