//! The `carta.metrics.v1` report document, shared by every frontend
//! that exports metrics: the CLI's `--metrics-json <path>` flag and
//! the server's `GET /v1/metrics` endpoint both emit exactly this
//! shape, so dashboards never need two parsers.
//!
//! One JSON object:
//!
//! ```json
//! {
//!   "schema": "carta.metrics.v1",
//!   "command": "loss",
//!   "wall_ms": 12.7,
//!   "metrics": {
//!     "engine.cache.hits": 13,
//!     "engine.batch.queue_depth": {"count": 1, "sum": 13, "min": 13,
//!                                   "max": 13, "p50": 13, "p99": 13,
//!                                   "mean": 13.0},
//!     "rta.iterations": 5301
//!   },
//!   "derived": {"cache_hit_rate": 0.5, "points_per_s": 1023.9}
//! }
//! ```
//!
//! `metrics` maps every metric name touched during the window to its
//! delta: counters and gauges to numbers, histograms to
//! `{count, sum, min, max, p50, p99, mean}` objects.

use crate::json::ObjectBuilder;
use crate::metrics::MetricsSnapshot;

/// The schema identifier stamped on every report.
pub const SCHEMA: &str = "carta.metrics.v1";

/// Headline numbers computed from a snapshot delta.
#[derive(Debug, Clone, Copy)]
pub struct Derived {
    /// Evaluator memo-cache hit rate over the window (0..1).
    pub cache_hit_rate: f64,
    /// Sweep points (or evaluations, when no sweep ran) per second.
    pub points_per_s: f64,
}

impl Derived {
    /// Computes the derived numbers from a snapshot delta and the
    /// wall-clock seconds the window spans.
    pub fn from_delta(delta: &MetricsSnapshot, wall_s: f64) -> Self {
        let hits = delta.counter("engine.cache.hits").unwrap_or(0);
        let misses = delta.counter("engine.cache.misses").unwrap_or(0);
        let cache_hit_rate = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        // Sweep points where a sweep ran; otherwise every evaluation
        // (cached or analyzed) counts as a point.
        let points = match delta.counter("sweep.points") {
            Some(p) if p > 0 => p,
            _ => hits + misses,
        };
        let points_per_s = if wall_s > 0.0 {
            points as f64 / wall_s
        } else {
            0.0
        };
        Derived {
            cache_hit_rate,
            points_per_s,
        }
    }
}

/// Builds the `carta.metrics.v1` JSON document (newline-terminated).
pub fn metrics_json(
    command: &str,
    wall_s: f64,
    delta: &MetricsSnapshot,
    derived: &Derived,
) -> String {
    let derived_obj = ObjectBuilder::new()
        .num("cache_hit_rate", derived.cache_hit_rate)
        .num("points_per_s", derived.points_per_s)
        .build();
    let mut doc = ObjectBuilder::new()
        .string("schema", SCHEMA)
        .string("command", command)
        .num("wall_ms", wall_s * 1000.0)
        .raw("metrics", &delta.to_json())
        .raw("derived", &derived_obj)
        .build();
    doc.push('\n');
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use crate::metrics::MetricValue;

    #[test]
    fn derived_rates_from_counters() {
        let mut delta = MetricsSnapshot {
            values: Default::default(),
        };
        delta
            .values
            .insert("engine.cache.hits".into(), MetricValue::Counter(3));
        delta
            .values
            .insert("engine.cache.misses".into(), MetricValue::Counter(1));
        let d = Derived::from_delta(&delta, 2.0);
        assert!((d.cache_hit_rate - 0.75).abs() < 1e-12);
        assert!((d.points_per_s - 2.0).abs() < 1e-12);
        // Sweep points take precedence when present.
        delta
            .values
            .insert("sweep.points".into(), MetricValue::Counter(26));
        let d = Derived::from_delta(&delta, 2.0);
        assert!((d.points_per_s - 13.0).abs() < 1e-12);
    }

    #[test]
    fn empty_delta_has_zero_rates() {
        let delta = MetricsSnapshot {
            values: Default::default(),
        };
        let d = Derived::from_delta(&delta, 1.0);
        assert_eq!(d.cache_hit_rate, 0.0);
        assert_eq!(d.points_per_s, 0.0);
    }

    #[test]
    fn metrics_json_document_parses_and_has_schema() {
        let mut delta = MetricsSnapshot {
            values: Default::default(),
        };
        delta
            .values
            .insert("engine.cache.hits".into(), MetricValue::Counter(5));
        let derived = Derived::from_delta(&delta, 0.5);
        let doc = metrics_json("loss", 0.5, &delta, &derived);
        let parsed = json::parse(&doc).expect("valid json");
        assert_eq!(parsed.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert_eq!(parsed.get("command").and_then(Value::as_str), Some("loss"));
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("engine.cache.hits"))
                .and_then(Value::as_f64),
            Some(5.0)
        );
        assert!(parsed
            .get("derived")
            .and_then(|d| d.get("cache_hit_rate"))
            .is_some());
    }
}
