//! Dependency-free observability substrate for the `carta` workspace.
//!
//! Two facades, both inert until switched on:
//!
//! - **Metrics** ([`metrics`]): a [`MetricsRegistry`] of named atomic
//!   [`Counter`]s, [`Gauge`]s and log₂-bucketed [`Histogram`]s. The
//!   analysis crates record into the process-wide [`metrics::global`]
//!   registry when [`metrics::enabled`] (one relaxed atomic load on
//!   the fast path), or into an explicit registry handed to
//!   `Evaluator::builder().metrics(..)`.
//! - **Tracing** ([`trace`]): scoped spans ([`span!`]) and point
//!   events ([`event!`]) delivered to a pluggable [`SpanSink`] —
//!   [`NullSink`], [`StderrSink`], [`RingBufferSink`] (backs
//!   `carta trace`) or [`JsonlSink`]. Field formatting is deferred
//!   behind a closure, so disabled call sites cost a single atomic
//!   load.
//!
//! Like the `shims/` crates, `carta-obs` has **zero external
//! dependencies**; [`json`] provides the small emitter/parser the
//! sinks and the `--metrics-json` schema tests share.
//!
//! ```
//! use carta_obs::{metrics, span};
//!
//! metrics::set_enabled(true);
//! let hits = metrics::global().counter("engine.cache.hits");
//! {
//!     let _span = span!("rta.bus", msgs = 64);
//!     hits.inc();
//! }
//! assert!(metrics::global().snapshot().counter("engine.cache.hits").unwrap() >= 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
pub mod metrics;
pub mod report;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricValue, MetricsRegistry, MetricsSnapshot,
    PhaseGuard,
};
pub use trace::{
    JsonlSink, NullSink, RingBufferSink, SpanEvent, SpanGuard, SpanKind, SpanSink, StderrSink,
};

/// Convenience glob-import: `use carta_obs::prelude::*;`
pub mod prelude {
    pub use crate::metrics::{MetricsRegistry, MetricsSnapshot};
    pub use crate::trace::{RingBufferSink, SpanEvent, SpanSink};
    pub use crate::{event, span};
}
