//! The metrics registry: named atomic counters, gauges and histograms.
//!
//! Recording is lock-free (`Relaxed` atomics on pre-resolved handles);
//! the registry itself is only locked when a handle is first resolved
//! or a snapshot is taken. A process-wide [`global`] registry backs the
//! library facade; it records only while [`enabled`] — a single relaxed
//! load — so instrumentation in hot paths is effectively free when
//! observability is off.

use crate::json::ObjectBuilder;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of power-of-two histogram buckets (covers the full `u64`
/// range: bucket `i` holds values with `floor(log2(v)) + 1 == i`,
/// bucket 0 holds zeros).
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds
/// or counts). Quantiles are approximate — resolved to the geometric
/// midpoint of their bucket — which is plenty for "is this microseconds
/// or milliseconds" observability questions.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("summary", &self.summary())
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time summary.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    // Geometric midpoint of bucket i: [2^(i-1), 2^i).
                    return if i == 0 {
                        0
                    } else {
                        (1u64 << (i - 1)) + (1u64 << (i - 1)) / 2
                    };
                }
            }
            0
        };
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p99: quantile(0.99),
        }
    }
}

/// Snapshot of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Approximate median (bucket midpoint).
    pub p50: u64,
    /// Approximate 99th percentile (bucket midpoint).
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One recorded value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// A registry of named metrics.
///
/// Handles are get-or-create: the first `counter("x")` call defines the
/// metric, later calls return the same atomic.
///
/// # Panics
///
/// Requesting an existing name as a different kind (e.g.
/// `gauge("engine.cache.hits")` after `counter("engine.cache.hits")`)
/// panics — such a collision is a programming error, not a runtime
/// condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating if needed) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// Resolves (creating if needed) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// Resolves (creating if needed) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` already registered as {other:?}"),
        }
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self
            .metrics
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MetricsSnapshot {
            values: metrics
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// An immutable snapshot of a registry, suitable for rendering and
/// differencing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Metric name → recorded value, sorted by name.
    pub values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// The counter total under `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value under `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram summary under `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(v)) => Some(*v),
            _ => None,
        }
    }

    /// The change from `before` to `self`: counters and histogram
    /// count/sum subtract (saturating); gauges and histogram min/max
    /// and quantiles keep the later value. Metrics absent from
    /// `before` pass through unchanged.
    pub fn delta(&self, before: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(name, after)| {
                let value = match (after, before.values.get(name)) {
                    (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                        MetricValue::Counter(a.saturating_sub(*b))
                    }
                    (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                        MetricValue::Histogram(HistogramSummary {
                            count: a.count.saturating_sub(b.count),
                            sum: a.sum.saturating_sub(b.sum),
                            ..*a
                        })
                    }
                    (other, _) => other.clone(),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { values }
    }

    /// Renders the snapshot as one JSON object: counters and gauges
    /// become numbers, histograms become
    /// `{"count","sum","min","max","p50","p99","mean"}` objects.
    pub fn to_json(&self) -> String {
        let mut obj = ObjectBuilder::new();
        for (name, value) in &self.values {
            obj = match value {
                MetricValue::Counter(v) => obj.uint(name, *v),
                MetricValue::Gauge(v) => obj.num(name, *v),
                MetricValue::Histogram(h) => obj.raw(
                    name,
                    &ObjectBuilder::new()
                        .uint("count", h.count)
                        .uint("sum", h.sum)
                        .uint("min", h.min)
                        .uint("max", h.max)
                        .uint("p50", h.p50)
                        .uint("p99", h.p99)
                        .num("mean", h.mean())
                        .build(),
                ),
            };
        }
        obj.build()
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide registry the library facade records into.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// `true` once global metrics collection has been switched on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switches global metrics collection on or off.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Scope guard recording the wall time of a named phase into the
/// global registry (counter `phase.<name>.wall_ns`) — the CLI's
/// per-phase timing. Inert unless [`enabled`] at construction.
#[derive(Debug)]
pub struct PhaseGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl PhaseGuard {
    /// Starts timing `name` (a no-op when global metrics are off).
    #[must_use = "the phase is timed until the guard drops"]
    pub fn new(name: &'static str) -> Self {
        PhaseGuard {
            name,
            start: enabled().then(Instant::now),
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            global()
                .counter(&format!("phase.{}.wall_ns", self.name))
                .add(ns);
        }
    }
}

/// Starts timing a named phase; see [`PhaseGuard`].
#[must_use = "the phase is timed until the guard drops"]
pub fn phase(name: &'static str) -> PhaseGuard {
    PhaseGuard::new(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn counters_gauges_histograms_record() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("c").get(), 5, "handles alias by name");
        reg.gauge("g").set(2.5);
        assert_eq!(reg.gauge("g").get(), 2.5);
        let h = reg.histogram("h");
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!((s.count, s.sum, s.min, s.max), (4, 106, 1, 100));
        assert!(s.p50 >= 1 && s.p50 <= 4, "median bucket: {}", s.p50);
        assert!(s.p99 >= 64, "p99 in the top bucket: {}", s.p99);
        assert!((s.mean() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let h = Histogram::default();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collisions_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_delta_subtracts_monotonic_parts() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(10);
        reg.gauge("g").set(1.0);
        reg.histogram("h").record(7);
        let before = reg.snapshot();
        reg.counter("c").add(5);
        reg.gauge("g").set(9.0);
        reg.histogram("h").record(9);
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.counter("c"), Some(5));
        assert_eq!(delta.gauge("g"), Some(9.0));
        let h = delta.histogram("h").expect("present");
        assert_eq!((h.count, h.sum), (1, 9));
    }

    #[test]
    fn snapshot_json_is_parseable() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.cache.hits").add(3);
        reg.histogram("rta.wall_ns").record(1000);
        let doc = reg.snapshot().to_json();
        let v = parse(&doc).expect("valid json");
        assert_eq!(
            v.get("engine.cache.hits").and_then(|x| x.as_f64()),
            Some(3.0)
        );
        assert_eq!(
            v.get("rta.wall_ns")
                .and_then(|x| x.get("count"))
                .and_then(|x| x.as_f64()),
            Some(1.0)
        );
    }

    #[test]
    fn phase_guard_records_only_when_enabled() {
        // Note: the enabled flag is process-global; this test leaves it
        // exactly as it found it.
        let was = enabled();
        set_enabled(false);
        drop(phase("obs_test_off"));
        assert_eq!(
            global().snapshot().counter("phase.obs_test_off.wall_ns"),
            None
        );
        set_enabled(true);
        drop(phase("obs_test_on"));
        let recorded = global()
            .snapshot()
            .counter("phase.obs_test_on.wall_ns")
            .expect("recorded");
        assert!(recorded > 0);
        set_enabled(was);
    }
}
