//! Utilization-based schedulability tests (Liu & Layland, ref. \[3\]).

use crate::task::Task;

/// Total processor utilization of a task set (worst-case execution
/// divided by period, summed).
pub fn utilization(tasks: &[Task]) -> f64 {
    tasks
        .iter()
        .map(|t| t.c_max.as_ns() as f64 / t.activation.period().as_ns() as f64)
        .sum()
}

/// The Liu & Layland rate-monotonic bound `n·(2^(1/n) − 1)`.
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Verdict of the utilization test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtilizationVerdict {
    /// Utilization below the Liu & Layland bound: schedulable under
    /// rate-monotonic priorities without further analysis.
    SchedulableByBound,
    /// Above the bound but below 1: inconclusive — run the exact
    /// response-time analysis.
    Inconclusive,
    /// Utilization at or above 1: definitely unschedulable.
    Overloaded,
}

/// Applies the Liu & Layland test to a task set.
pub fn liu_layland_test(tasks: &[Task]) -> UtilizationVerdict {
    let u = utilization(tasks);
    if u >= 1.0 {
        UtilizationVerdict::Overloaded
    } else if u <= liu_layland_bound(tasks.len()) {
        UtilizationVerdict::SchedulableByBound
    } else {
        UtilizationVerdict::Inconclusive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Priority;
    use carta_core::time::Time;

    fn task(period_ms: u64, wcet_ms: u64, prio: u32) -> Task {
        Task::periodic(
            format!("t{prio}"),
            Priority(prio),
            Time::from_ms(period_ms),
            Time::ZERO,
            Time::from_ms(wcet_ms),
        )
    }

    #[test]
    fn bound_values() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-3);
        assert!((liu_layland_bound(3) - 0.7798).abs() < 1e-3);
        assert_eq!(liu_layland_bound(0), 1.0);
        // The bound converges to ln 2 from above.
        assert!(liu_layland_bound(1000) > std::f64::consts::LN_2);
    }

    #[test]
    fn verdicts() {
        // U = 0.5: below every bound.
        let light = [task(10, 2, 2), task(20, 6, 1)];
        assert_eq!(
            liu_layland_test(&light),
            UtilizationVerdict::SchedulableByBound
        );
        // U = 0.9: above the 2-task bound, below 1.
        let tight = [task(10, 5, 2), task(20, 8, 1)];
        assert_eq!(liu_layland_test(&tight), UtilizationVerdict::Inconclusive);
        // U = 1.2.
        let over = [task(10, 8, 2), task(20, 8, 1)];
        assert_eq!(liu_layland_test(&over), UtilizationVerdict::Overloaded);
        assert!((utilization(&over) - 1.2).abs() < 1e-12);
    }
}
