//! Gateway forwarding strategies.
//!
//! "As another example, gatewaying strategies can be optimized. These
//! are usually under the control of the OEMs and provide many
//! parameters that can be tuned such as queue configuration" (paper,
//! Sec. 5). This module makes the two archetypal strategies concrete
//! and analyzable:
//!
//! * **per-signal forwarding** — one event-triggered routing task per
//!   forwarded stream: minimal added latency, but one task (and its
//!   OSEK overhead) per signal;
//! * **polled batch forwarding** — one periodic task copies everything
//!   that arrived since its last run: constant task count, but each
//!   signal pays up to one poll period of sampling delay.
//!
//! Both produce ordinary [`Task`] sets for [`crate::rta::analyze_ecu`],
//! plus the strategy-specific sampling delay to add to end-to-end
//! latencies; the `gateway_strategies` test compares them.

use crate::rta::{analyze_ecu, EcuAnalysisConfig};
use crate::task::{Priority, Task};
use carta_core::analysis::AnalysisError;
use carta_core::event_model::EventModel;
use carta_core::time::Time;

/// One stream a gateway must forward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardedStream {
    /// Stream name (used for task naming and reports).
    pub name: String,
    /// Arrival model at the gateway (the upstream bus's output model).
    pub arrival: EventModel,
    /// Per-frame copy cost.
    pub copy_cost: Time,
}

/// How the gateway moves frames between buses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingStrategy {
    /// One routing task per stream, activated per arriving frame.
    /// Priorities are assigned descending from `top_priority` in
    /// stream order.
    PerSignal {
        /// Priority of the first stream's task.
        top_priority: u32,
    },
    /// One periodic task forwards all pending frames per run.
    PolledBatch {
        /// Poll period.
        poll_period: Time,
        /// Priority of the batch task.
        priority: u32,
    },
}

/// The derived gateway workload and its latency properties.
#[derive(Debug, Clone)]
pub struct GatewayPlan {
    /// Tasks to run on the gateway ECU (forwarding tasks only; add the
    /// rest of the ECU's task set before analyzing).
    pub tasks: Vec<Task>,
    /// Per-stream worst-case forwarding delay: sampling delay (batch
    /// only) plus the forwarding task's worst-case response time.
    pub per_stream_delay: Vec<(String, Time)>,
    /// Gateway CPU utilization of the forwarding work alone.
    pub utilization: f64,
}

/// Builds the forwarding task set for `streams` under `strategy` and
/// computes per-stream worst-case forwarding delays (analyzing the
/// forwarding tasks in isolation — callers embedding them into a
/// larger task set should re-run [`analyze_ecu`] on the union).
///
/// # Errors
///
/// Propagates [`AnalysisError`] from the ECU analysis; reports
/// overloaded forwarding plans as [`AnalysisError::Unbounded`].
pub fn plan_gateway(
    streams: &[ForwardedStream],
    strategy: ForwardingStrategy,
    config: &EcuAnalysisConfig,
) -> Result<GatewayPlan, AnalysisError> {
    if streams.is_empty() {
        return Err(AnalysisError::InvalidModel("no streams to forward".into()));
    }
    match strategy {
        ForwardingStrategy::PerSignal { top_priority } => {
            let tasks: Vec<Task> = streams
                .iter()
                .enumerate()
                .map(|(k, s)| {
                    Task::periodic(
                        format!("route_{}", s.name),
                        Priority(top_priority.saturating_sub(k as u32)),
                        s.arrival.period(),
                        s.copy_cost,
                        s.copy_cost,
                    )
                    .with_activation(s.arrival)
                })
                .collect();
            let report = analyze_ecu(&tasks, config)?;
            let mut delays = Vec::with_capacity(streams.len());
            for (s, t) in streams.iter().zip(&report.tasks) {
                let wcrt = t.bounds.ok_or_else(|| AnalysisError::Unbounded {
                    entity: t.name.as_str().into(),
                })?;
                delays.push((s.name.clone(), wcrt.worst()));
            }
            Ok(GatewayPlan {
                utilization: crate::utilization::utilization(&tasks),
                tasks,
                per_stream_delay: delays,
            })
        }
        ForwardingStrategy::PolledBatch {
            poll_period,
            priority,
        } => {
            if poll_period.is_zero() {
                return Err(AnalysisError::InvalidModel("zero poll period".into()));
            }
            // Worst-case work per poll: every stream's maximum arrivals
            // within one poll period.
            let mut batch_wcet = Time::ZERO;
            let mut batch_bcet = Time::ZERO;
            for s in streams {
                let frames = s.arrival.eta_plus(poll_period);
                batch_wcet += s.copy_cost * frames;
                batch_bcet += s.copy_cost; // at least something arrived
            }
            let task = Task::periodic(
                "route_batch",
                Priority(priority),
                poll_period,
                batch_bcet.min(batch_wcet),
                batch_wcet,
            );
            let tasks = vec![task];
            let report = analyze_ecu(&tasks, config)?;
            let wcrt = report.tasks[0]
                .bounds
                .ok_or_else(|| AnalysisError::Unbounded {
                    entity: "route_batch".into(),
                })?
                .worst();
            // Every stream pays: up to one poll period of waiting for
            // the next run, plus that run's response.
            let delays = streams
                .iter()
                .map(|s| (s.name.clone(), poll_period + wcrt))
                .collect();
            Ok(GatewayPlan {
                utilization: crate::utilization::utilization(&tasks),
                tasks,
                per_stream_delay: delays,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::OsekOverhead;

    fn streams() -> Vec<ForwardedStream> {
        [5u64, 10, 20, 50]
            .iter()
            .enumerate()
            .map(|(k, &p)| ForwardedStream {
                name: format!("s{k}"),
                arrival: EventModel::periodic_with_jitter(Time::from_ms(p), Time::from_ms(p / 5)),
                copy_cost: Time::from_us(60),
            })
            .collect()
    }

    #[test]
    fn per_signal_has_lower_latency_than_batch() {
        let cfg = EcuAnalysisConfig::default();
        let fast = plan_gateway(
            &streams(),
            ForwardingStrategy::PerSignal { top_priority: 10 },
            &cfg,
        )
        .expect("valid");
        let batch = plan_gateway(
            &streams(),
            ForwardingStrategy::PolledBatch {
                poll_period: Time::from_ms(5),
                priority: 10,
            },
            &cfg,
        )
        .expect("valid");
        assert_eq!(fast.tasks.len(), 4);
        assert_eq!(batch.tasks.len(), 1);
        for ((name_f, d_f), (name_b, d_b)) in
            fast.per_stream_delay.iter().zip(&batch.per_stream_delay)
        {
            assert_eq!(name_f, name_b);
            assert!(
                d_f < d_b,
                "{name_f}: per-signal {d_f} should beat batch {d_b}"
            );
        }
    }

    #[test]
    fn osek_overhead_flips_the_utilization_comparison() {
        // With hefty per-activation kernel costs, the single batch task
        // wins on CPU utilization despite its worse latency: exactly
        // the trade-off the OEM tunes.
        let costly = EcuAnalysisConfig {
            overhead: OsekOverhead {
                activate: Time::from_us(80),
                terminate: Time::from_us(40),
                preempt: Time::from_us(30),
            },
            ..EcuAnalysisConfig::default()
        };
        let fast = plan_gateway(
            &streams(),
            ForwardingStrategy::PerSignal { top_priority: 10 },
            &costly,
        )
        .expect("valid");
        // A slower poll amortizes the per-activation cost over more
        // copied frames.
        let batch = plan_gateway(
            &streams(),
            ForwardingStrategy::PolledBatch {
                poll_period: Time::from_ms(20),
                priority: 10,
            },
            &costly,
        )
        .expect("valid");
        // Kernel overhead scales with activations: 4 streams' worth of
        // activations vs one batch activation per poll. Utilization is
        // computed on raw task WCETs, so compare effective demand:
        let eff = |plan: &GatewayPlan| -> f64 {
            plan.tasks
                .iter()
                .map(|t| {
                    costly.overhead.effective_wcet(t.c_max).as_ns() as f64
                        / t.activation.period().as_ns() as f64
                })
                .sum()
        };
        assert!(
            eff(&batch) < eff(&fast),
            "batch {:.4} should undercut per-signal {:.4}",
            eff(&batch),
            eff(&fast)
        );
    }

    #[test]
    fn batch_wcet_scales_with_burstiness() {
        let calm = plan_gateway(
            &streams(),
            ForwardingStrategy::PolledBatch {
                poll_period: Time::from_ms(10),
                priority: 5,
            },
            &EcuAnalysisConfig::default(),
        )
        .expect("valid");
        let mut bursty = streams();
        bursty[0].arrival = EventModel::burst(Time::from_ms(5), 4, Time::from_us(300));
        let stormy = plan_gateway(
            &bursty,
            ForwardingStrategy::PolledBatch {
                poll_period: Time::from_ms(10),
                priority: 5,
            },
            &EcuAnalysisConfig::default(),
        )
        .expect("valid");
        assert!(stormy.tasks[0].c_max > calm.tasks[0].c_max);
    }

    #[test]
    fn validation_errors() {
        let cfg = EcuAnalysisConfig::default();
        assert!(
            plan_gateway(&[], ForwardingStrategy::PerSignal { top_priority: 1 }, &cfg).is_err()
        );
        assert!(plan_gateway(
            &streams(),
            ForwardingStrategy::PolledBatch {
                poll_period: Time::ZERO,
                priority: 1
            },
            &cfg
        )
        .is_err());
    }
}
