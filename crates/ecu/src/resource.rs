//! Adapter exposing an ECU scheduler as a resource of the
//! compositional engine in `carta-core`.

use crate::rta::{analyze_ecu, EcuAnalysisConfig};
use crate::task::Task;
use carta_core::analysis::AnalysisError;
use carta_core::comp::{Resource, SlotResponse};
use carta_core::event_model::EventModel;

/// An ECU participating in a system-level analysis. Slot `i` is task
/// `i` of the wrapped task set.
#[derive(Debug)]
pub struct EcuResource {
    name: String,
    tasks: Vec<Task>,
    config: EcuAnalysisConfig,
}

impl EcuResource {
    /// Wraps a task set with the default (zero-overhead) configuration.
    pub fn new(name: impl Into<String>, tasks: Vec<Task>) -> Self {
        EcuResource {
            name: name.into(),
            tasks,
            config: EcuAnalysisConfig::default(),
        }
    }

    /// Overrides the analysis configuration.
    pub fn with_config(mut self, config: EcuAnalysisConfig) -> Self {
        self.config = config;
        self
    }

    /// The wrapped tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Default activation model of slot `i`.
    pub fn default_activation(&self, slot: usize) -> Option<EventModel> {
        self.tasks.get(slot).map(|t| t.activation)
    }
}

impl Resource for EcuResource {
    fn name(&self) -> &str {
        &self.name
    }

    fn slot_count(&self) -> usize {
        self.tasks.len()
    }

    fn slot_name(&self, slot: usize) -> String {
        self.tasks
            .get(slot)
            .map(|t| format!("{}:{}", self.name, t.name))
            .unwrap_or_else(|| format!("{}[{slot}]", self.name))
    }

    fn analyze(&self, activations: &[EventModel]) -> Result<Vec<SlotResponse>, AnalysisError> {
        if activations.len() != self.tasks.len() {
            return Err(AnalysisError::InvalidModel(format!(
                "ECU `{}` expects {} activations, got {}",
                self.name,
                self.tasks.len(),
                activations.len()
            )));
        }
        let tasks: Vec<Task> = self
            .tasks
            .iter()
            .zip(activations)
            .map(|(t, em)| t.clone().with_activation(*em))
            .collect();
        let report = analyze_ecu(&tasks, &self.config)?;
        report
            .tasks
            .iter()
            .map(|t| match t.bounds {
                Some(bounds) => Ok(SlotResponse {
                    bounds,
                    min_output_spacing: self.tasks[t.index].c_min,
                }),
                None => Err(AnalysisError::Unbounded {
                    entity: t.name.as_str().into(),
                }),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Priority;
    use carta_core::comp::{CompositionalSystem, NodeRef};
    use carta_core::time::Time;

    fn tasks() -> Vec<Task> {
        vec![
            Task::periodic(
                "ctrl",
                Priority(2),
                Time::from_ms(5),
                Time::from_us(500),
                Time::from_ms(1),
            ),
            Task::periodic(
                "gw",
                Priority(1),
                Time::from_ms(10),
                Time::from_us(100),
                Time::from_ms(2),
            ),
        ]
    }

    #[test]
    fn resource_surface() {
        let res = EcuResource::new("EMS", tasks());
        assert_eq!(res.slot_count(), 2);
        assert_eq!(res.slot_name(1), "EMS:gw");
        assert_eq!(res.slot_name(5), "EMS[5]");
        assert!(res.default_activation(0).is_some());
        assert!(res.analyze(&[]).is_err());
    }

    #[test]
    fn gateway_chain_ecu_feeds_bus_style_propagation() {
        let res = EcuResource::new("EMS", tasks());
        let act0 = res.default_activation(0).expect("slot");
        let act1 = res.default_activation(1).expect("slot");
        let mut sys = CompositionalSystem::new();
        let e = sys.add_resource(Box::new(res));
        sys.set_source(NodeRef::new(e, 0), act0).expect("valid");
        sys.set_source(NodeRef::new(e, 1), act1).expect("valid");
        let result = sys.analyze().expect("converges");
        // gw: 2 ms own + one ctrl preemption = 3 ms worst, 100 us best.
        let b = result.response(NodeRef::new(e, 1));
        assert_eq!(b.worst(), Time::from_ms(3));
        assert_eq!(b.best(), Time::from_us(100));
        // Downstream message model per the paper's datasheet duality:
        let out = result.output(NodeRef::new(e, 1));
        assert_eq!(out.jitter(), Time::from_ms(3) - Time::from_us(100));
    }
}
