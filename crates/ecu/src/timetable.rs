//! TimeTable (time-triggered) task activation.
//!
//! The paper (Sec. 5.2) highlights that SymTA/S handles "TimeTable
//! activation of messages and tasks, typically found in the automotive
//! industry". A time table dispatches activations at fixed offsets
//! within a table period. The derived standard event model is exact for
//! a single slot (periodic, no jitter) and uses the burst mapping for
//! multiple slots; the analysis uses the model conservatively (it
//! ignores relative offsets between *different* tasks, which is sound),
//! while the simulator replays offsets exactly.

use carta_core::event_model::EventModel;
use carta_core::time::Time;
use std::error::Error;
use std::fmt;

/// A dispatch table: activation offsets within a repeating period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeTable {
    period: Time,
    slots: Vec<Time>,
}

/// Error building a [`TimeTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildTimeTableError {
    /// The table period is zero.
    ZeroPeriod,
    /// No slots given.
    Empty,
    /// A slot offset reaches or exceeds the period.
    OffsetOutOfRange {
        /// The offending offset.
        offset: Time,
    },
    /// Two slots share an offset.
    DuplicateOffset {
        /// The duplicated offset.
        offset: Time,
    },
}

impl fmt::Display for BuildTimeTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildTimeTableError::ZeroPeriod => write!(f, "time table period must be positive"),
            BuildTimeTableError::Empty => write!(f, "time table has no slots"),
            BuildTimeTableError::OffsetOutOfRange { offset } => {
                write!(f, "slot offset {offset} not below the table period")
            }
            BuildTimeTableError::DuplicateOffset { offset } => {
                write!(f, "duplicate slot offset {offset}")
            }
        }
    }
}

impl Error for BuildTimeTableError {}

impl TimeTable {
    /// Creates a table from a period and slot offsets (any order).
    ///
    /// # Errors
    ///
    /// See [`BuildTimeTableError`].
    pub fn new(period: Time, mut slots: Vec<Time>) -> Result<Self, BuildTimeTableError> {
        if period.is_zero() {
            return Err(BuildTimeTableError::ZeroPeriod);
        }
        if slots.is_empty() {
            return Err(BuildTimeTableError::Empty);
        }
        slots.sort_unstable();
        for w in slots.windows(2) {
            if w[0] == w[1] {
                return Err(BuildTimeTableError::DuplicateOffset { offset: w[0] });
            }
        }
        if let Some(&last) = slots.last() {
            if last >= period {
                return Err(BuildTimeTableError::OffsetOutOfRange { offset: last });
            }
        }
        Ok(TimeTable { period, slots })
    }

    /// Table period.
    pub fn period(&self) -> Time {
        self.period
    }

    /// Sorted slot offsets.
    pub fn slots(&self) -> &[Time] {
        &self.slots
    }

    /// Minimum distance between consecutive activations (including the
    /// wrap-around from the last slot to the first of the next period).
    pub fn min_slot_distance(&self) -> Time {
        let n = self.slots.len();
        if n == 1 {
            return self.period;
        }
        let mut min = self.period + self.slots[0] - self.slots[n - 1];
        for w in self.slots.windows(2) {
            min = min.min(w[1] - w[0]);
        }
        min
    }

    /// The standard event model describing this table's activations:
    /// exact (periodic, zero jitter) for one slot, burst-shaped for
    /// several.
    pub fn event_model(&self) -> EventModel {
        if self.slots.len() == 1 {
            EventModel::periodic(self.period)
        } else {
            EventModel::burst(
                self.period,
                self.slots.len() as u64,
                self.min_slot_distance(),
            )
        }
    }

    /// All activation instants in `[0, horizon)`, for simulation.
    pub fn activations_until(&self, horizon: Time) -> Vec<Time> {
        let mut out = Vec::new();
        let mut base = Time::ZERO;
        'outer: loop {
            for &s in &self.slots {
                let t = base + s;
                if t >= horizon {
                    break 'outer;
                }
                out.push(t);
            }
            base += self.period;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Time {
        Time::from_ms(v)
    }

    #[test]
    fn single_slot_is_periodic() {
        let tt = TimeTable::new(ms(10), vec![ms(3)]).expect("valid");
        assert_eq!(tt.event_model(), EventModel::periodic(ms(10)));
        assert_eq!(tt.min_slot_distance(), ms(10));
    }

    #[test]
    fn multi_slot_burst_model() {
        let tt = TimeTable::new(ms(20), vec![ms(0), ms(2), ms(4)]).expect("valid");
        assert_eq!(tt.min_slot_distance(), ms(2));
        let em = tt.event_model();
        // The burst mapping is a sound over-approximation: it must
        // admit at least the true worst case (4 events in a window
        // aligned with the burst: 0, 2, 4, 20) and stays close to it.
        assert!(em.eta_plus(ms(20)) >= 4);
        assert!(em.eta_plus(ms(20)) <= 5);
        // The long-run rate converges to 3 per 20 ms.
        assert!(em.eta_plus(ms(200)) <= 33);
        assert_eq!(em.dmin(), ms(2));
    }

    #[test]
    fn wraparound_distance_counts() {
        let tt = TimeTable::new(ms(10), vec![ms(1), ms(9)]).expect("valid");
        // 9 -> 11 wraps to slot at 1 of next period: distance 2 ms;
        // 1 -> 9 is 8 ms.
        assert_eq!(tt.min_slot_distance(), ms(2));
    }

    #[test]
    fn activation_replay() {
        let tt = TimeTable::new(ms(10), vec![ms(0), ms(4)]).expect("valid");
        assert_eq!(
            tt.activations_until(ms(25)),
            vec![ms(0), ms(4), ms(10), ms(14), ms(20), ms(24)]
        );
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            TimeTable::new(Time::ZERO, vec![ms(0)]),
            Err(BuildTimeTableError::ZeroPeriod)
        );
        assert_eq!(
            TimeTable::new(ms(10), vec![]),
            Err(BuildTimeTableError::Empty)
        );
        assert_eq!(
            TimeTable::new(ms(10), vec![ms(10)]),
            Err(BuildTimeTableError::OffsetOutOfRange { offset: ms(10) })
        );
        assert_eq!(
            TimeTable::new(ms(10), vec![ms(2), ms(2)]),
            Err(BuildTimeTableError::DuplicateOffset { offset: ms(2) })
        );
        let err = TimeTable::new(ms(10), vec![ms(10)]).expect_err("out of range");
        assert!(err.to_string().contains("10ms"));
    }
}
