//! Static-priority preemptive response-time analysis for ECU tasks.
//!
//! This is the classic busy-window analysis of Joseph & Pandya
//! (ref. \[4\] of the paper), extended to standard event models and to
//! the OSEK flavour the paper mentions (Sec. 5.2): cooperative tasks,
//! hardware interrupts and kernel overheads.
//!
//! For task `i` and instance `q = 1, 2, …`:
//!
//! ```text
//! w = q·C_i + B_i + Σ_{j outranking i} η⁺_j(w)·(C_j + σ)
//! R_q = w_q − δ⁻_i(q)
//! ```
//!
//! where `B_i` is the largest non-preemptable segment of any
//! lower-ranked task and `σ` the per-preemption kernel overhead.
//! Cooperative tasks are analyzed as if preemptive, which is sound
//! (their non-preemptable segments can only *improve* their own
//! response) while their segments are charged as blocking to
//! higher-ranked tasks.

use crate::task::{OsekOverhead, Task};
use carta_core::analysis::{AnalysisError, ResponseBounds};
use carta_core::time::Time;

/// Configuration of the ECU analysis.
#[derive(Debug, Clone, Copy)]
pub struct EcuAnalysisConfig {
    /// Kernel overheads.
    pub overhead: OsekOverhead,
    /// Busy windows growing beyond this horizon are declared unbounded.
    pub horizon: Time,
    /// Maximum number of instances examined per busy period.
    pub max_instances: u64,
}

impl Default for EcuAnalysisConfig {
    fn default() -> Self {
        EcuAnalysisConfig {
            overhead: OsekOverhead::none(),
            horizon: Time::from_s(10),
            max_instances: 4096,
        }
    }
}

/// Per-task analysis result.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Index of the task in the input order.
    pub index: usize,
    /// Task name.
    pub name: String,
    /// Blocking charged to this task.
    pub blocking: Time,
    /// Response bounds, or `None` on overload.
    pub bounds: Option<ResponseBounds>,
    /// Instances in the longest busy period (0 when overloaded).
    pub instances: u64,
}

impl TaskReport {
    /// Worst-case response time, if bounded.
    pub fn wcrt(&self) -> Option<Time> {
        self.bounds.map(|b| b.worst())
    }
}

/// Result of analyzing a whole ECU.
#[derive(Debug, Clone)]
pub struct EcuReport {
    /// Per-task reports, in input order.
    pub tasks: Vec<TaskReport>,
}

impl EcuReport {
    /// Looks a report up by task name.
    pub fn by_name(&self, name: &str) -> Option<&TaskReport> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// `true` if every task has a bounded response time within its
    /// activation period (implicit deadline).
    pub fn all_bounded(&self) -> bool {
        self.tasks.iter().all(|t| t.bounds.is_some())
    }
}

/// Analyzes all tasks of one ECU.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidModel`] if two tasks share a rank
/// (priorities must be unique within task/ISR class) or the task set is
/// empty. Overload is reported per task, not as an error.
///
/// # Examples
///
/// ```
/// use carta_ecu::prelude::*;
/// use carta_core::time::Time;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tasks = vec![
///     Task::periodic("ctrl", Priority(2), Time::from_ms(5), Time::from_us(200), Time::from_ms(1)),
///     Task::periodic("comm", Priority(1), Time::from_ms(10), Time::from_us(100), Time::from_ms(2)),
/// ];
/// let report = analyze_ecu(&tasks, &EcuAnalysisConfig::default())?;
/// // comm runs after one ctrl instance: 1 + 2 ms.
/// assert_eq!(report.by_name("comm").unwrap().wcrt(), Some(Time::from_ms(3)));
/// # Ok(())
/// # }
/// ```
pub fn analyze_ecu(tasks: &[Task], config: &EcuAnalysisConfig) -> Result<EcuReport, AnalysisError> {
    if tasks.is_empty() {
        return Err(AnalysisError::InvalidModel("ECU has no tasks".into()));
    }
    let _span = carta_obs::span!("rta.ecu", tasks = tasks.len());
    if carta_obs::metrics::enabled() {
        carta_obs::metrics::global().counter("rta.ecu.runs").inc();
    }
    for (i, a) in tasks.iter().enumerate() {
        for b in &tasks[i + 1..] {
            if a.rank() == b.rank() {
                return Err(AnalysisError::InvalidModel(format!(
                    "tasks `{}` and `{}` share priority {}",
                    a.name, b.name, a.priority
                )));
            }
        }
    }

    let oh = config.overhead;
    let mut reports = Vec::with_capacity(tasks.len());
    for (i, task) in tasks.iter().enumerate() {
        let hp: Vec<&Task> = tasks.iter().filter(|t| t.outranks(task)).collect();
        let blocking = tasks
            .iter()
            .filter(|t| task.outranks(t))
            .map(|t| t.max_blocking_segment())
            .max()
            .unwrap_or(Time::ZERO);
        let c_eff = oh.effective_wcet(task.c_max);

        let mut bounds = None;
        let mut instances = 0;
        if let Some((wcrt, q)) = task_wcrt(task, &hp, blocking, c_eff, config) {
            let bcrt = task.c_min;
            bounds = Some(ResponseBounds::new(bcrt, wcrt.max(bcrt)));
            instances = q;
        }
        reports.push(TaskReport {
            index: i,
            name: task.name.clone(),
            blocking,
            bounds,
            instances,
        });
    }
    Ok(EcuReport { tasks: reports })
}

pub(crate) fn task_wcrt(
    task: &Task,
    hp: &[&Task],
    blocking: Time,
    c_eff: Time,
    config: &EcuAnalysisConfig,
) -> Option<(Time, u64)> {
    let oh = config.overhead;
    let mut wcrt = Time::ZERO;
    let mut w = Time::ZERO;
    let mut q = 1u64;
    loop {
        w = w.max(blocking + c_eff * q);
        loop {
            let mut demand = blocking + c_eff * q;
            for j in hp {
                let eta = j.activation.eta_plus(w);
                let cost = oh.effective_wcet(j.c_max) + oh.preempt;
                demand = demand.saturating_add(cost.saturating_mul(eta));
            }
            if demand > config.horizon {
                return None;
            }
            if demand <= w {
                break;
            }
            w = demand;
        }
        wcrt = wcrt.max(w.saturating_sub(task.activation.delta_min(q)));
        if w > task.activation.delta_min(q + 1) {
            q += 1;
            if q > config.max_instances {
                return None;
            }
        } else {
            return Some((wcrt, q));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ExecKind, Preemption, Priority};
    use carta_core::event_model::EventModel;

    fn ms(v: u64) -> Time {
        Time::from_ms(v)
    }

    fn task(name: &str, prio: u32, period_ms: u64, wcet_ms: u64) -> Task {
        Task::periodic(name, Priority(prio), ms(period_ms), Time::ZERO, ms(wcet_ms))
    }

    #[test]
    fn textbook_two_task_case() {
        // Classic: T1 (P=5, C=1, high), T2 (P=10, C=2, low).
        let tasks = vec![task("t1", 2, 5, 1), task("t2", 1, 10, 2)];
        let rep = analyze_ecu(&tasks, &EcuAnalysisConfig::default()).expect("valid");
        assert_eq!(rep.by_name("t1").unwrap().wcrt(), Some(ms(1)));
        assert_eq!(rep.by_name("t2").unwrap().wcrt(), Some(ms(3)));
        assert!(rep.all_bounded());
    }

    #[test]
    fn three_task_liu_layland_example() {
        // T1 (2,0.5), T2 (4,1), T3 (8,2): U = 0.75.
        let tasks = vec![
            Task::periodic("t1", Priority(3), ms(2), Time::ZERO, Time::from_us(500)),
            task("t2", 2, 4, 1),
            task("t3", 1, 8, 2),
        ];
        let rep = analyze_ecu(&tasks, &EcuAnalysisConfig::default()).expect("valid");
        // t3: w = 2 + ceil(w/2)*0.5 + ceil(w/4)*1 converges at w = 4.
        assert_eq!(rep.by_name("t3").unwrap().wcrt(), Some(ms(4)));
    }

    #[test]
    fn isr_outranks_high_priority_task() {
        let tasks = vec![
            task("ctrl", 100, 5, 1),
            Task::periodic(
                "timer_isr",
                Priority(1),
                ms(1),
                Time::ZERO,
                Time::from_us(100),
            )
            .as_isr(),
        ];
        let rep = analyze_ecu(&tasks, &EcuAnalysisConfig::default()).expect("valid");
        // ctrl suffers interrupt interference despite its huge priority:
        // w = 1 ms + ceil(w/1ms)*0.1 ms -> 1.2 ms (two ISR hits).
        assert_eq!(
            rep.by_name("ctrl").unwrap().wcrt(),
            Some(Time::from_us(1200))
        );
        assert_eq!(
            rep.by_name("timer_isr").unwrap().wcrt(),
            Some(Time::from_us(100))
        );
    }

    #[test]
    fn cooperative_segment_blocks_higher_priority() {
        let tasks = vec![
            task("hi", 2, 10, 1),
            task("lo", 1, 20, 5).cooperative(ms(2)),
        ];
        let rep = analyze_ecu(&tasks, &EcuAnalysisConfig::default()).expect("valid");
        assert_eq!(rep.by_name("hi").unwrap().blocking, ms(2));
        assert_eq!(rep.by_name("hi").unwrap().wcrt(), Some(ms(3)));
        // And the cooperative task itself is analyzed (as preemptive):
        // 5 ms own + one hi preemption.
        assert_eq!(rep.by_name("lo").unwrap().wcrt(), Some(ms(6)));
    }

    #[test]
    fn osek_overhead_inflates_everything() {
        let ideal = analyze_ecu(
            &[task("t1", 2, 5, 1), task("t2", 1, 10, 2)],
            &EcuAnalysisConfig::default(),
        )
        .expect("valid");
        let costly = analyze_ecu(
            &[task("t1", 2, 5, 1), task("t2", 1, 10, 2)],
            &EcuAnalysisConfig {
                overhead: OsekOverhead {
                    activate: Time::from_us(50),
                    terminate: Time::from_us(20),
                    preempt: Time::from_us(30),
                },
                ..EcuAnalysisConfig::default()
            },
        )
        .expect("valid");
        assert!(costly.by_name("t2").unwrap().wcrt() > ideal.by_name("t2").unwrap().wcrt());
        // t2 = 70 us overhead + 2 ms own + (1 ms + 100 us) interference.
        assert_eq!(
            costly.by_name("t2").unwrap().wcrt(),
            Some(Time::from_us(2000 + 70 + 1000 + 70 + 30))
        );
    }

    #[test]
    fn jittery_activation_multiple_instances() {
        // Jitter beyond the period: two activations can coincide.
        let t = task("t", 1, 5, 2).with_activation(EventModel::periodic_with_jitter(ms(5), ms(6)));
        let rep = analyze_ecu(&[t], &EcuAnalysisConfig::default()).expect("valid");
        let r = rep.by_name("t").unwrap();
        assert!(r.instances >= 2);
        assert!(r.wcrt().expect("bounded") >= ms(4));
    }

    #[test]
    fn overload_is_per_task() {
        let tasks = vec![task("hog", 2, 2, 3), task("starved", 1, 100, 1)];
        let rep = analyze_ecu(&tasks, &EcuAnalysisConfig::default()).expect("valid");
        assert!(rep.by_name("hog").unwrap().bounds.is_none());
        assert!(rep.by_name("starved").unwrap().bounds.is_none());
        assert!(!rep.all_bounded());
    }

    #[test]
    fn duplicate_priorities_rejected() {
        let tasks = vec![task("a", 1, 5, 1), task("b", 1, 10, 1)];
        assert!(matches!(
            analyze_ecu(&tasks, &EcuAnalysisConfig::default()),
            Err(AnalysisError::InvalidModel(_))
        ));
        // Same numeric priority is fine across the task/ISR divide.
        let mixed = vec![task("a", 1, 5, 1), task("b", 1, 10, 1).as_isr()];
        assert!(analyze_ecu(&mixed, &EcuAnalysisConfig::default()).is_ok());
        assert!(matches!(
            analyze_ecu(&[], &EcuAnalysisConfig::default()),
            Err(AnalysisError::InvalidModel(_))
        ));
    }

    #[test]
    fn preemption_kinds_exposed() {
        let t = task("a", 1, 5, 1);
        assert_eq!(t.preemption, Preemption::Preemptive);
        assert_eq!(t.kind, ExecKind::Task);
    }
}
