//! Deriving message send jitters from ECU task analysis.
//!
//! The paper's Section 3.3 observes that message send jitters "result
//! from ECU implementation decisions" — concretely, a message queued at
//! the end of a task inherits the task's activation jitter plus its
//! response-time variation. This module computes exactly the numbers an
//! ECU supplier would publish in a datasheet (Sec. 5.1).

use carta_core::analysis::ResponseBounds;
use carta_core::event_model::EventModel;

/// The event model of a message queued each time a task completes.
///
/// `J_msg = J_task + (R⁺ − R⁻)`; the period is the task's period and
/// the minimum distance is the task's best-case response (two
/// completions cannot be closer than the later activation's best case).
pub fn message_model_from_task(
    task_activation: &EventModel,
    response: &ResponseBounds,
) -> EventModel {
    task_activation.propagate(response.best(), response.worst(), response.best())
}

/// Like [`message_model_from_task`] for a message sent only every
/// `nth` task run (period multiplication).
///
/// # Panics
///
/// Panics if `nth` is zero.
pub fn message_model_every_nth(
    task_activation: &EventModel,
    response: &ResponseBounds,
    nth: u64,
) -> EventModel {
    assert!(nth > 0, "nth must be positive");
    let stretched = EventModel::new(
        task_activation.kind(),
        task_activation.period() * nth,
        task_activation.jitter(),
        task_activation.dmin(),
    );
    stretched.propagate(response.best(), response.worst(), response.best())
}

#[cfg(test)]
mod tests {
    use super::*;
    use carta_core::time::Time;

    #[test]
    fn send_jitter_is_activation_plus_response_span() {
        let act = EventModel::periodic_with_jitter(Time::from_ms(10), Time::from_ms(1));
        let resp = ResponseBounds::new(Time::from_us(200), Time::from_ms(3));
        let msg = message_model_from_task(&act, &resp);
        assert_eq!(msg.period(), Time::from_ms(10));
        assert_eq!(msg.jitter(), Time::from_ms(1) + Time::from_us(2800));
        assert_eq!(msg.dmin(), Time::from_us(200));
    }

    #[test]
    fn every_nth_multiplies_period_only() {
        let act = EventModel::periodic(Time::from_ms(5));
        let resp = ResponseBounds::new(Time::from_us(100), Time::from_us(600));
        let msg = message_model_every_nth(&act, &resp, 4);
        assert_eq!(msg.period(), Time::from_ms(20));
        assert_eq!(msg.jitter(), Time::from_us(500));
    }

    #[test]
    #[should_panic(expected = "nth must be positive")]
    fn zeroth_rejected() {
        let act = EventModel::periodic(Time::from_ms(5));
        let resp = ResponseBounds::new(Time::ZERO, Time::ZERO);
        let _ = message_model_every_nth(&act, &resp, 0);
    }
}
