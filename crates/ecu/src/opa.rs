//! Audsley's Optimal Priority Assignment for OSEK task sets.
//!
//! The ECU-side counterpart of `carta_can::opa`: a supplier that
//! receives jitter requirements from the OEM (paper Sec. 5.1) can use
//! OPA to find task priorities that meet given response-time budgets —
//! or to prove that no fixed-priority configuration can.
//!
//! The busy-window test in [`crate::rta`] depends only on the *sets* of
//! higher- and lower-ranked tasks (interference from above, the largest
//! non-preemptable segment from below), so OPA is optimal for it.
//! Interrupts keep their hardware-given precedence: OPA permutes task
//! priorities only, with every ISR fixed above all tasks.

use crate::rta::{task_wcrt, EcuAnalysisConfig};
use crate::task::{ExecKind, Task};
use carta_core::time::Time;

/// Runs Audsley's algorithm over the *tasks* of the set (ISRs stay on
/// top in their given relative order). `deadlines[i]` is the response
/// budget of `tasks[i]`.
///
/// Returns the strongest-first ordering of task indices (ISR indices
/// first, in input order), or `None` if no assignment meets all
/// budgets.
///
/// # Panics
///
/// Panics if `deadlines.len() != tasks.len()`.
pub fn audsley_task_priorities(
    tasks: &[Task],
    config: &EcuAnalysisConfig,
    deadlines: &[Time],
) -> Option<Vec<usize>> {
    assert_eq!(tasks.len(), deadlines.len(), "one deadline per task");
    let isrs: Vec<usize> = (0..tasks.len())
        .filter(|&i| tasks[i].kind == ExecKind::Isr)
        .collect();
    let mut unassigned: Vec<usize> = (0..tasks.len())
        .filter(|&i| tasks[i].kind == ExecKind::Task)
        .collect();
    let mut assigned_low: Vec<usize> = Vec::new();

    let oh = config.overhead;
    while !unassigned.is_empty() {
        let mut chosen = None;
        for (pos, &candidate) in unassigned.iter().enumerate() {
            // Higher-ranked: all ISRs plus every other unassigned task.
            let hp: Vec<&Task> = isrs
                .iter()
                .chain(unassigned.iter().filter(|&&j| j != candidate))
                .map(|&j| &tasks[j])
                .collect();
            let blocking = assigned_low
                .iter()
                .map(|&j| tasks[j].max_blocking_segment())
                .max()
                .unwrap_or(Time::ZERO);
            let c_eff = oh.effective_wcet(tasks[candidate].c_max);
            let ok = task_wcrt(&tasks[candidate], &hp, blocking, c_eff, config)
                .is_some_and(|(wcrt, _)| wcrt <= deadlines[candidate]);
            if ok {
                chosen = Some(pos);
                break;
            }
        }
        match chosen {
            Some(pos) => {
                let t = unassigned.remove(pos);
                assigned_low.push(t);
            }
            None => return None,
        }
    }
    assigned_low.reverse();
    let mut order = isrs;
    order.extend(assigned_low);
    Some(order)
}

/// Applies a strongest-first ordering: returns the task set with fresh
/// [`Priority`](crate::task::Priority) values descending along the
/// order (ISR entries keep their kind; numeric priorities order ISRs
/// among themselves as given).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the task indices.
pub fn apply_priority_order(tasks: &[Task], order: &[usize]) -> Vec<Task> {
    assert_eq!(order.len(), tasks.len(), "order/task-set mismatch");
    let mut out: Vec<Task> = tasks.to_vec();
    let n = tasks.len() as u32;
    let mut seen = vec![false; tasks.len()];
    for (rank, &idx) in order.iter().enumerate() {
        assert!(!seen[idx], "order must be a permutation");
        seen[idx] = true;
        out[idx].priority = crate::task::Priority(n - rank as u32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rta::analyze_ecu;
    use crate::task::Priority;

    fn ms(v: u64) -> Time {
        Time::from_ms(v)
    }

    /// Deadline-monotonic-hostile set: feasible only if the *short
    /// deadline* task gets priority, regardless of its long period.
    fn tasks() -> Vec<Task> {
        vec![
            // Long period but tight response budget.
            Task::periodic("alarm", Priority(1), ms(100), Time::ZERO, ms(1)),
            // Short period, relaxed budget.
            Task::periodic("ctrl", Priority(2), ms(5), Time::ZERO, ms(2)),
            Task::periodic("log", Priority(3), ms(50), Time::ZERO, ms(5)),
        ]
    }

    #[test]
    fn finds_the_only_feasible_order() {
        let set = tasks();
        // alarm must respond within 1.5 ms; ctrl within 5 ms; log 50 ms.
        let deadlines = [ms(1) + Time::from_us(500), ms(5), ms(50)];
        let order = audsley_task_priorities(&set, &EcuAnalysisConfig::default(), &deadlines)
            .expect("feasible");
        // alarm needs the top slot: anything above it would push its
        // response past 1.5 ms.
        assert_eq!(order[0], 0, "alarm must rank first, got {order:?}");

        // The assignment verifies end to end.
        let prioritized = apply_priority_order(&set, &order);
        let report = analyze_ecu(&prioritized, &EcuAnalysisConfig::default()).expect("valid");
        for (i, t) in report.tasks.iter().enumerate() {
            assert!(
                t.wcrt().expect("bounded") <= deadlines[i],
                "{} misses",
                t.name
            );
        }
    }

    #[test]
    fn reports_infeasibility() {
        let set = tasks();
        // Nobody can give every task a sub-millisecond response.
        let deadlines = [Time::from_us(500); 3];
        assert!(audsley_task_priorities(&set, &EcuAnalysisConfig::default(), &deadlines).is_none());
    }

    #[test]
    fn isrs_stay_on_top() {
        let mut set = tasks();
        set.push(
            Task::periodic("timer", Priority(9), ms(1), Time::ZERO, Time::from_us(100)).as_isr(),
        );
        let deadlines = [ms(3), ms(5), ms(50), ms(1)];
        let order = audsley_task_priorities(&set, &EcuAnalysisConfig::default(), &deadlines)
            .expect("feasible");
        assert_eq!(order[0], 3, "the ISR leads the order");
        let prioritized = apply_priority_order(&set, &order);
        // The ISR outranks every task after re-prioritization.
        for t in &prioritized[..3] {
            assert!(prioritized[3].outranks(t));
        }
    }

    #[test]
    #[should_panic(expected = "order/task-set mismatch")]
    fn bad_order_rejected() {
        let _ = apply_priority_order(&tasks(), &[0, 1]);
    }
}
