//! # carta-ecu
//!
//! ECU-side scheduling analysis for the `carta` workspace: OSEK-style
//! fixed-priority tasks with preemptive and cooperative behaviour,
//! hardware interrupts, kernel overheads and TimeTable activation —
//! the feature list the paper attributes to SymTA/S in Section 5.2.
//!
//! The crate answers the supplier-side questions of the paper's
//! supply-chain discussion:
//!
//! * *What send jitter can I guarantee for my messages?* —
//!   [`rta::analyze_ecu`] plus [`send_jitter::message_model_from_task`],
//! * *Does my task set fit at all?* — [`utilization::liu_layland_test`]
//!   for the quick check, the exact busy-window analysis for the truth,
//! * *How do time-triggered tables interact?* — [`timetable::TimeTable`].
//!
//! [`resource::EcuResource`] plugs an ECU into the compositional engine
//! so gateway chains (bus → task → bus) can be analyzed end to end.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-free library surface: a malformed model must surface as a
// typed error, never a crash. Tests and benches may still unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gateway;
pub mod offset_analysis;
pub mod opa;
pub mod resource;
pub mod rta;
pub mod send_jitter;
pub mod task;
pub mod timetable;
pub mod utilization;

/// Convenient single import for the common types of this crate.
pub mod prelude {
    pub use crate::gateway::{plan_gateway, ForwardedStream, ForwardingStrategy, GatewayPlan};
    pub use crate::offset_analysis::{analyze_offsets, OffsetReport, OffsetTask};
    pub use crate::opa::{apply_priority_order, audsley_task_priorities};
    pub use crate::resource::EcuResource;
    pub use crate::rta::{analyze_ecu, EcuAnalysisConfig, EcuReport, TaskReport};
    pub use crate::send_jitter::{message_model_every_nth, message_model_from_task};
    pub use crate::task::{ExecKind, OsekOverhead, Preemption, Priority, Task};
    pub use crate::timetable::TimeTable;
    pub use crate::utilization::{liu_layland_test, utilization, UtilizationVerdict};
}
