//! Exact analysis of time-triggered (offset-determined) task sets.
//!
//! The conservative event-model analysis in [`crate::rta`] ignores the
//! relative offsets of tasks dispatched from one [`TimeTable`] — sound,
//! but pessimistic when the table was laid out precisely to *avoid*
//! interference. For a fully time-triggered ECU (every activation at a
//! fixed offset, zero jitter, fixed priorities) the schedule repeats
//! every hyperperiod, so worst-case response times can be computed
//! **exactly** by replaying one hyperperiod of the deterministic
//! preemptive schedule. This module does exactly that, giving the
//! "TimeTable activation" support the paper attributes to SymTA/S
//! (Sec. 5.2) its precise form.
//!
//! [`TimeTable`]: crate::timetable::TimeTable

use crate::task::Task;
use carta_core::analysis::{AnalysisError, ResponseBounds};
use carta_core::time::Time;

/// One time-triggered activation source: a task released every
/// `period` at `offset` past the table epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffsetTask {
    /// The task (its activation model is ignored; release times come
    /// from `period`/`offset`).
    pub task: Task,
    /// Release period within the table.
    pub period: Time,
    /// Release offset from the table epoch.
    pub offset: Time,
}

/// Exact per-task result of the hyperperiod replay.
#[derive(Debug, Clone)]
pub struct OffsetTaskReport {
    /// Task name.
    pub name: String,
    /// Exact response bounds over the hyperperiod (worst case uses the
    /// worst-case execution times of *all* tasks; best case the best
    /// cases).
    pub bounds: ResponseBounds,
    /// Number of releases replayed.
    pub releases: u64,
}

/// Result of an exact offset-schedule analysis.
#[derive(Debug, Clone)]
pub struct OffsetReport {
    /// Per-task reports, in input order.
    pub tasks: Vec<OffsetTaskReport>,
    /// The hyperperiod that was replayed.
    pub hyperperiod: Time,
}

impl OffsetReport {
    /// Looks a report up by task name.
    pub fn by_name(&self, name: &str) -> Option<&OffsetTaskReport> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Exactly analyzes a fully time-triggered task set by replaying one
/// hyperperiod of the preemptive fixed-priority schedule (plus the
/// longest offset, to cover releases straddling the wrap-around).
///
/// # Errors
///
/// * [`AnalysisError::InvalidModel`] for empty sets, zero periods,
///   offsets not below their period, duplicate ranks, or hyperperiods
///   beyond `1 h` (replay would be unreasonable);
/// * [`AnalysisError::Unbounded`] if the replay detects a release that
///   does not finish within one hyperperiod after its release
///   (overload).
pub fn analyze_offsets(tasks: &[OffsetTask]) -> Result<OffsetReport, AnalysisError> {
    if tasks.is_empty() {
        return Err(AnalysisError::InvalidModel(
            "no time-triggered tasks".into(),
        ));
    }
    for t in tasks {
        if t.period.is_zero() {
            return Err(AnalysisError::InvalidModel(format!(
                "task `{}` has zero period",
                t.task.name
            )));
        }
        if t.offset >= t.period {
            return Err(AnalysisError::InvalidModel(format!(
                "task `{}` offset {} not below its period {}",
                t.task.name, t.offset, t.period
            )));
        }
    }
    for (i, a) in tasks.iter().enumerate() {
        for b in &tasks[i + 1..] {
            if a.task.rank() == b.task.rank() {
                return Err(AnalysisError::InvalidModel(format!(
                    "tasks `{}` and `{}` share a rank",
                    a.task.name, b.task.name
                )));
            }
        }
    }
    let hyper_ns = tasks.iter().fold(1u64, |acc, t| lcm(acc, t.period.as_ns()));
    let hyperperiod = Time::from_ns(hyper_ns);
    if hyperperiod > Time::from_s(3600) {
        return Err(AnalysisError::InvalidModel(format!(
            "hyperperiod {hyperperiod} too long to replay"
        )));
    }
    // A demand above capacity diverges; the finite replay would
    // silently under-report it.
    let utilization: f64 = tasks
        .iter()
        .map(|t| t.task.c_max.as_ns() as f64 / t.period.as_ns() as f64)
        .sum();
    if utilization > 1.0 {
        // Utilization above zero implies at least one task exists.
        if let Some(worst) = tasks.iter().max_by(|a, b| a.task.c_max.cmp(&b.task.c_max)) {
            return Err(AnalysisError::Unbounded {
                entity: worst.task.name.as_str().into(),
            });
        }
    }

    // Replay twice: once with everyone's WCET (worst case), once with
    // BCET (best case). The schedule is deterministic in both.
    let worst = replay(tasks, hyperperiod, true)?;
    let best = replay(tasks, hyperperiod, false)?;
    let reports = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| OffsetTaskReport {
            name: t.task.name.clone(),
            bounds: ResponseBounds::new(best[i].0.min(worst[i].0), worst[i].1),
            releases: worst[i].2,
        })
        .collect();
    Ok(OffsetReport {
        tasks: reports,
        hyperperiod,
    })
}

/// Replays the deterministic preemptive schedule over two hyperperiods
/// (to cover wrap-around backlog) and returns, per task,
/// `(min response, max response, releases counted)`.
#[allow(clippy::type_complexity)]
fn replay(
    tasks: &[OffsetTask],
    hyperperiod: Time,
    use_wcet: bool,
) -> Result<Vec<(Time, Time, u64)>, AnalysisError> {
    let n = tasks.len();
    let exec = |i: usize| -> Time {
        if use_wcet {
            tasks[i].task.c_max
        } else {
            tasks[i].task.c_min
        }
    };
    // Collect all releases over two hyperperiods.
    struct Release {
        task: usize,
        at: Time,
        remaining: Time,
        finished: Option<Time>,
    }
    let horizon = hyperperiod * 2;
    let mut releases: Vec<Release> = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let mut at = t.offset;
        while at < horizon {
            releases.push(Release {
                task: i,
                at,
                remaining: exec(i),
                finished: None,
            });
            at += t.period;
        }
    }
    releases.sort_by_key(|r| r.at);

    // Event-driven replay: at each scheduling point run the
    // highest-ranked pending release until the next release or
    // completion.
    let mut now = Time::ZERO;
    loop {
        let next_release = releases.iter().filter(|r| r.at > now).map(|r| r.at).min();
        // Highest-ranked pending release (released, unfinished).
        let current = releases
            .iter()
            .enumerate()
            .filter(|(_, r)| r.at <= now && r.finished.is_none() && !r.remaining.is_zero())
            .max_by_key(|(_, r)| tasks[r.task].task.rank())
            .map(|(idx, _)| idx);
        match (current, next_release) {
            (None, None) => break,
            (None, Some(nr)) => now = nr,
            (Some(idx), nr) => {
                let finish_at = now + releases[idx].remaining;
                let until = match nr {
                    Some(nr) if nr < finish_at => nr,
                    _ => finish_at,
                };
                releases[idx].remaining -= until - now;
                if releases[idx].remaining.is_zero() {
                    releases[idx].finished = Some(until);
                }
                now = until;
            }
        }
        if now >= horizon * 2 {
            break;
        }
    }

    // Gather per-task response statistics over the *second* hyperperiod
    // (the first warms up wrap-around backlog; the schedule there can
    // only be lighter, never heavier).
    let mut out = vec![(Time::MAX, Time::ZERO, 0u64); n];
    for r in &releases {
        if r.at < hyperperiod {
            continue; // warm-up window
        }
        let finished = r.finished.ok_or_else(|| AnalysisError::Unbounded {
            entity: tasks[r.task].task.name.as_str().into(),
        })?;
        let resp = finished - r.at;
        let entry = &mut out[r.task];
        entry.0 = entry.0.min(resp);
        entry.1 = entry.1.max(resp);
        entry.2 += 1;
    }
    for (i, e) in out.iter().enumerate() {
        if e.2 == 0 {
            return Err(AnalysisError::InvalidModel(format!(
                "task `{}` had no release in the measured hyperperiod",
                tasks[i].task.name
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rta::{analyze_ecu, EcuAnalysisConfig};
    use crate::task::Priority;

    fn ms(v: u64) -> Time {
        Time::from_ms(v)
    }

    fn ot(name: &str, prio: u32, period_ms: u64, offset_ms: u64, wcet_ms: u64) -> OffsetTask {
        OffsetTask {
            task: Task::periodic(
                name,
                Priority(prio),
                ms(period_ms),
                ms(wcet_ms),
                ms(wcet_ms),
            ),
            period: ms(period_ms),
            offset: ms(offset_ms),
        }
    }

    #[test]
    fn disjoint_offsets_eliminate_interference() {
        // Two 10 ms tasks of 2 ms each, offset 0 and 5: never collide.
        let set = [ot("a", 2, 10, 0, 2), ot("b", 1, 10, 5, 2)];
        let exact = analyze_offsets(&set).expect("valid");
        assert_eq!(exact.by_name("a").unwrap().bounds.worst(), ms(2));
        assert_eq!(exact.by_name("b").unwrap().bounds.worst(), ms(2));
        assert_eq!(exact.hyperperiod, ms(10));

        // The offset-blind analysis must charge b the interference.
        let blind: Vec<Task> = set.iter().map(|t| t.task.clone()).collect();
        let conservative = analyze_ecu(&blind, &EcuAnalysisConfig::default()).expect("valid");
        assert_eq!(conservative.by_name("b").unwrap().wcrt(), Some(ms(4)));
    }

    #[test]
    fn colliding_offsets_show_real_interference() {
        let set = [ot("a", 2, 10, 0, 2), ot("b", 1, 10, 1, 2)];
        let exact = analyze_offsets(&set).expect("valid");
        // b released at 1, a runs until 2, b runs 2..4: response 3 ms.
        assert_eq!(exact.by_name("b").unwrap().bounds.worst(), ms(3));
    }

    #[test]
    fn preemption_is_replayed() {
        // Low-priority long task released first, preempted mid-flight.
        let set = [ot("hi", 2, 10, 4, 2), ot("lo", 1, 20, 0, 6)];
        let exact = analyze_offsets(&set).expect("valid");
        // lo: runs 0..4, preempted 4..6, finishes 6..8: response 8 ms.
        assert_eq!(exact.by_name("lo").unwrap().bounds.worst(), ms(8));
        assert_eq!(exact.by_name("hi").unwrap().bounds.worst(), ms(2));
        // lo's second release (at 20, hi at 24) sees the same pattern.
        assert_eq!(exact.by_name("lo").unwrap().releases, 1);
        assert_eq!(exact.by_name("hi").unwrap().releases, 2);
    }

    #[test]
    fn exact_never_exceeds_offset_blind_analysis() {
        // Random-ish mix with harmonic periods.
        let set = [
            ot("t1", 4, 5, 1, 1),
            ot("t2", 3, 10, 3, 2),
            ot("t3", 2, 20, 0, 3),
            ot("t4", 1, 20, 7, 4),
        ];
        let exact = analyze_offsets(&set).expect("valid");
        let blind: Vec<Task> = set.iter().map(|t| t.task.clone()).collect();
        let conservative = analyze_ecu(&blind, &EcuAnalysisConfig::default()).expect("valid");
        for t in &exact.tasks {
            let c = conservative.by_name(&t.name).expect("present");
            assert!(
                t.bounds.worst() <= c.wcrt().expect("bounded"),
                "{}: exact {} > conservative {:?}",
                t.name,
                t.bounds.worst(),
                c.wcrt()
            );
            assert!(t.bounds.best() <= t.bounds.worst());
        }
    }

    #[test]
    fn overload_and_validation_errors() {
        // 2 tasks of 6 ms every 10 ms: 120 % — replay detects overload.
        let set = [ot("a", 2, 10, 0, 6), ot("b", 1, 10, 5, 6)];
        assert!(matches!(
            analyze_offsets(&set),
            Err(AnalysisError::Unbounded { .. })
        ));
        assert!(analyze_offsets(&[]).is_err());
        let bad_offset = [ot("a", 1, 10, 12, 1)];
        assert!(analyze_offsets(&bad_offset).is_err());
        let dup = [ot("a", 1, 10, 0, 1), ot("b", 1, 20, 0, 1)];
        assert!(analyze_offsets(&dup).is_err());
    }

    #[test]
    fn best_case_uses_bcets() {
        let mut set = vec![ot("a", 2, 10, 0, 2)];
        set[0].task.c_min = ms(1);
        let exact = analyze_offsets(&set).expect("valid");
        let b = exact.by_name("a").unwrap().bounds;
        assert_eq!(b.best(), ms(1));
        assert_eq!(b.worst(), ms(2));
    }
}
