//! The ECU task model: OSEK-style fixed-priority tasks and interrupts.

use carta_core::event_model::EventModel;
use carta_core::time::Time;
use std::fmt;

/// Scheduling priority. Following OSEK convention, a numerically
/// **larger** priority wins the CPU; interrupts outrank every task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u32);

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio {}", self.0)
    }
}

/// Preemption behaviour of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preemption {
    /// Fully preemptive: can be interrupted anywhere; never blocks
    /// higher-priority work.
    Preemptive,
    /// Cooperative (OSEK non-preemptable between schedule points): runs
    /// in non-preemptable segments of at most the given length. Each
    /// segment blocks higher-priority tasks once.
    Cooperative {
        /// Longest non-preemptable segment.
        max_segment: Time,
    },
}

/// Whether the entity is a task or a hardware interrupt handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecKind {
    /// Ordinary OSEK task.
    #[default]
    Task,
    /// Interrupt service routine — outranks all tasks regardless of the
    /// numeric priority, which only orders ISRs among themselves.
    Isr,
}

/// One schedulable entity on an ECU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// Task name.
    pub name: String,
    /// Scheduling priority (larger wins; see [`ExecKind`] for ISRs).
    pub priority: Priority,
    /// Best-case execution time.
    pub c_min: Time,
    /// Worst-case execution time.
    pub c_max: Time,
    /// Activation event model.
    pub activation: EventModel,
    /// Preemption behaviour.
    pub preemption: Preemption,
    /// Task or interrupt.
    pub kind: ExecKind,
}

impl Task {
    /// Creates a fully-preemptive periodic task.
    ///
    /// # Panics
    ///
    /// Panics if `c_min > c_max`.
    pub fn periodic(
        name: impl Into<String>,
        priority: Priority,
        period: Time,
        c_min: Time,
        c_max: Time,
    ) -> Self {
        assert!(c_min <= c_max, "execution time bounds inverted");
        Task {
            name: name.into(),
            priority,
            c_min,
            c_max,
            activation: EventModel::periodic(period),
            preemption: Preemption::Preemptive,
            kind: ExecKind::Task,
        }
    }

    /// Returns a copy with a different activation model.
    pub fn with_activation(mut self, activation: EventModel) -> Self {
        self.activation = activation;
        self
    }

    /// Returns a copy marked cooperative with the given segment bound.
    pub fn cooperative(mut self, max_segment: Time) -> Self {
        self.preemption = Preemption::Cooperative { max_segment };
        self
    }

    /// Returns a copy marked as an interrupt handler.
    pub fn as_isr(mut self) -> Self {
        self.kind = ExecKind::Isr;
        self
    }

    /// The longest non-preemptable segment this task can impose on
    /// higher-priority work (zero if fully preemptive).
    pub fn max_blocking_segment(&self) -> Time {
        match self.preemption {
            Preemption::Preemptive => Time::ZERO,
            Preemption::Cooperative { max_segment } => max_segment.min(self.c_max),
        }
    }

    /// Effective scheduling rank: ISRs above all tasks, then by
    /// priority (descending).
    pub fn rank(&self) -> (bool, u32) {
        (matches!(self.kind, ExecKind::Isr), self.priority.0)
    }

    /// `true` if `self` preempts (has strictly higher rank than) `other`.
    pub fn outranks(&self, other: &Task) -> bool {
        self.rank() > other.rank()
    }
}

/// Fixed OSEK kernel overheads charged by the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OsekOverhead {
    /// Cost of activating and dispatching a task (added to every
    /// execution, own and interfering).
    pub activate: Time,
    /// Cost of terminating a task (added likewise).
    pub terminate: Time,
    /// Cost of a preemption (context switch), charged per interfering
    /// activation.
    pub preempt: Time,
}

impl OsekOverhead {
    /// Zero-overhead kernel (idealized).
    pub fn none() -> Self {
        Self::default()
    }

    /// The effective worst-case execution demand of one activation.
    pub fn effective_wcet(&self, c: Time) -> Time {
        self.activate + c + self.terminate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_put_isrs_first() {
        let t = Task::periodic(
            "t",
            Priority(10),
            Time::from_ms(10),
            Time::ZERO,
            Time::from_ms(1),
        );
        let isr = Task::periodic(
            "i",
            Priority(1),
            Time::from_ms(5),
            Time::ZERO,
            Time::from_us(50),
        )
        .as_isr();
        assert!(isr.outranks(&t));
        assert!(!t.outranks(&isr));
        let t2 = Task::periodic(
            "t2",
            Priority(11),
            Time::from_ms(10),
            Time::ZERO,
            Time::from_ms(1),
        );
        assert!(t2.outranks(&t));
    }

    #[test]
    fn blocking_segment_capped_by_wcet() {
        let t = Task::periodic(
            "t",
            Priority(1),
            Time::from_ms(10),
            Time::ZERO,
            Time::from_us(500),
        )
        .cooperative(Time::from_ms(2));
        assert_eq!(t.max_blocking_segment(), Time::from_us(500));
        let p = Task::periodic(
            "p",
            Priority(1),
            Time::from_ms(10),
            Time::ZERO,
            Time::from_ms(1),
        );
        assert_eq!(p.max_blocking_segment(), Time::ZERO);
    }

    #[test]
    fn overheads_extend_wcet() {
        let oh = OsekOverhead {
            activate: Time::from_us(10),
            terminate: Time::from_us(5),
            preempt: Time::from_us(8),
        };
        assert_eq!(oh.effective_wcet(Time::from_us(100)), Time::from_us(115));
        assert_eq!(
            OsekOverhead::none().effective_wcet(Time::from_us(100)),
            Time::from_us(100)
        );
    }

    #[test]
    #[should_panic(expected = "execution time bounds inverted")]
    fn inverted_wcet_rejected() {
        let _ = Task::periodic(
            "t",
            Priority(1),
            Time::from_ms(1),
            Time::from_ms(2),
            Time::from_ms(1),
        );
    }
}
